package vtk

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"lulesh/internal/domain"
)

func TestWriteStructure(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(3))
	var sb strings.Builder
	if err := Write(&sb, d); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DATASET STRUCTURED_GRID",
		"DIMENSIONS 4 4 4",
		fmt.Sprintf("POINTS %d double", d.NumNode()),
		fmt.Sprintf("CELL_DATA %d", d.NumElem()),
		"SCALARS energy double 1",
		"SCALARS pressure double 1",
		"SCALARS artificial_viscosity double 1",
		"SCALARS relative_volume double 1",
		fmt.Sprintf("POINT_DATA %d", d.NumNode()),
		"VECTORS velocity double",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in VTK output", want)
		}
	}
}

func TestWriteValuesRoundTrip(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(2))
	d.E[3] = 42.5
	var sb strings.Builder
	if err := Write(&sb, d); err != nil {
		t.Fatal(err)
	}
	// Parse the energy block and check element 3.
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var energies []float64
	inEnergy := false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "SCALARS energy") {
			inEnergy = true
			sc.Scan() // LOOKUP_TABLE
			continue
		}
		if inEnergy {
			if strings.HasPrefix(line, "SCALARS") {
				break
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(line), 64)
			if err != nil {
				t.Fatalf("bad energy line %q: %v", line, err)
			}
			energies = append(energies, v)
			if len(energies) == d.NumElem() {
				break
			}
		}
	}
	if len(energies) != d.NumElem() {
		t.Fatalf("parsed %d energies, want %d", len(energies), d.NumElem())
	}
	if energies[3] != 42.5 {
		t.Fatalf("energy[3] = %v", energies[3])
	}
	if energies[0] != d.E[0] {
		t.Fatalf("energy[0] = %v, want %v", energies[0], d.E[0])
	}
}

func TestWritePointCount(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(2))
	var sb strings.Builder
	if err := Write(&sb, d); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(sb.String(), "\n")
	count := 0
	inPoints := false
	for _, l := range lines {
		if strings.HasPrefix(l, "POINTS") {
			inPoints = true
			continue
		}
		if inPoints {
			if strings.HasPrefix(l, "CELL_DATA") {
				break
			}
			if strings.TrimSpace(l) != "" {
				count++
			}
		}
	}
	if count != d.NumNode() {
		t.Fatalf("wrote %d point lines, want %d", count, d.NumNode())
	}
}

func TestWriteBoxDomain(t *testing.T) {
	d := domain.NewSedovBox(domain.BoxConfig{
		Nx: 2, Ny: 3, Nz: 4, NumReg: 1, DepositEnergy: true,
	})
	var sb strings.Builder
	if err := Write(&sb, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "DIMENSIONS 3 4 5") {
		t.Fatal("box dimensions wrong in VTK header")
	}
}
