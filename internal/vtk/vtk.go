// Package vtk writes simulation snapshots in the legacy VTK structured-grid
// format, the analog of the reference implementation's VisIt plot dump
// (its -v flag). Files load in ParaView/VisIt: node coordinates and
// velocities as point data, energy, pressure, artificial viscosity and
// relative volume as cell data.
package vtk

import (
	"bufio"
	"fmt"
	"io"

	"lulesh/internal/domain"
)

// Write emits the domain's current state as a legacy-format VTK
// structured grid.
func Write(w io.Writer, d *domain.Domain) error {
	bw := bufio.NewWriter(w)
	m := d.Mesh

	fmt.Fprintf(bw, "# vtk DataFile Version 3.0\n")
	fmt.Fprintf(bw, "LULESH t=%.6e cycle=%d\n", d.Time, d.Cycle)
	fmt.Fprintf(bw, "ASCII\n")
	fmt.Fprintf(bw, "DATASET STRUCTURED_GRID\n")
	fmt.Fprintf(bw, "DIMENSIONS %d %d %d\n", m.Nx+1, m.Ny+1, m.Nz+1)

	fmt.Fprintf(bw, "POINTS %d double\n", m.NumNode)
	for n := 0; n < m.NumNode; n++ {
		fmt.Fprintf(bw, "%.17g %.17g %.17g\n", d.X[n], d.Y[n], d.Z[n])
	}

	fmt.Fprintf(bw, "CELL_DATA %d\n", m.NumElem)
	writeCellScalars(bw, "energy", d.E)
	writeCellScalars(bw, "pressure", d.P)
	writeCellScalars(bw, "artificial_viscosity", d.Q)
	writeCellScalars(bw, "relative_volume", d.V)

	fmt.Fprintf(bw, "POINT_DATA %d\n", m.NumNode)
	fmt.Fprintf(bw, "VECTORS velocity double\n")
	for n := 0; n < m.NumNode; n++ {
		fmt.Fprintf(bw, "%.17g %.17g %.17g\n", d.Xd[n], d.Yd[n], d.Zd[n])
	}

	return bw.Flush()
}

func writeCellScalars(w io.Writer, name string, vals []float64) {
	fmt.Fprintf(w, "SCALARS %s double 1\n", name)
	fmt.Fprintf(w, "LOOKUP_TABLE default\n")
	for _, v := range vals {
		fmt.Fprintf(w, "%.17g\n", v)
	}
}
