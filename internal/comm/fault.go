package comm

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// FaultPlan describes deterministic, seed-driven fault injection. Each
// probability is rolled independently per message from a per-(sender,
// receiver) PRNG stream, so the fault pattern for a given seed does not
// depend on goroutine scheduling: the n-th message of a pair always meets
// the same fate. CrashStep > 0 additionally schedules a whole-rank crash:
// rank CrashRank abandons the protocol at the first comm epoch >= CrashStep
// (once per plan — a recovered run does not re-crash).
type FaultPlan struct {
	Seed uint64

	Drop      float64       // probability a message is silently dropped
	Delay     float64       // probability a message is delayed by DelayBy
	DelayBy   time.Duration // injected delay (default 200us when Delay > 0)
	Duplicate float64       // probability a message is delivered twice
	Reorder   float64       // probability a message is held behind the pair's next

	CrashRank int // rank to crash (used only when CrashStep > 0)
	CrashStep int // comm epoch of the crash; 0 = no crash
}

// ParseFaultPlan parses the -faults CLI spec: a comma-separated list of
//
//	drop=P  delay=P[:DUR]  dup=P  reorder=P  crash=RANK@STEP
//
// e.g. "drop=0.05,delay=0.02:500us,dup=0.01,crash=1@20". Probabilities are
// in [0,1]; DUR is a Go duration. The seed feeds the injector's PRNG
// streams so a run is reproducible from (spec, seed).
func ParseFaultPlan(spec string, seed uint64) (*FaultPlan, error) {
	p := &FaultPlan{Seed: seed}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("comm: fault spec %q: want key=value", field)
		}
		switch key {
		case "drop", "dup", "reorder":
			pr, err := parseProb(val)
			if err != nil {
				return nil, fmt.Errorf("comm: fault spec %q: %w", field, err)
			}
			switch key {
			case "drop":
				p.Drop = pr
			case "dup":
				p.Duplicate = pr
			case "reorder":
				p.Reorder = pr
			}
		case "delay":
			prStr, durStr, hasDur := strings.Cut(val, ":")
			pr, err := parseProb(prStr)
			if err != nil {
				return nil, fmt.Errorf("comm: fault spec %q: %w", field, err)
			}
			p.Delay = pr
			p.DelayBy = 200 * time.Microsecond
			if hasDur {
				d, err := time.ParseDuration(durStr)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("comm: fault spec %q: bad duration", field)
				}
				p.DelayBy = d
			}
		case "crash":
			rankStr, stepStr, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("comm: fault spec %q: want crash=RANK@STEP", field)
			}
			rank, err1 := strconv.Atoi(rankStr)
			step, err2 := strconv.Atoi(stepStr)
			if err1 != nil || err2 != nil || rank < 0 || step < 1 {
				return nil, fmt.Errorf("comm: fault spec %q: want crash=RANK@STEP with step >= 1", field)
			}
			p.CrashRank, p.CrashStep = rank, step
		default:
			return nil, fmt.Errorf("comm: fault spec: unknown key %q", key)
		}
	}
	return p, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %q not in [0,1]", s)
	}
	return p, nil
}

// Active reports whether the plan injects any fault at all.
func (p *FaultPlan) Active() bool {
	return p != nil && (p.Drop > 0 || p.Delay > 0 || p.Duplicate > 0 ||
		p.Reorder > 0 || p.CrashStep > 0)
}

// InjectStats counts the faults an injector has actually committed.
type InjectStats struct {
	Dropped    int64
	Delayed    int64
	Duplicated int64
	Reordered  int64
}

// FaultInjector is the Transport that executes a FaultPlan. Per-pair PRNG
// streams make the decisions deterministic in the message order of each
// (sender, receiver) pair; per-pair mutable state (the PRNG and the
// reorder hold-back slot) is touched only on the sender's goroutine, so
// the injector needs no locks on the transmit path.
type FaultInjector struct {
	plan  FaultPlan
	ranks int
	pairs []pairFault

	crashed atomic.Bool // the plan's crash has been consumed

	dropped    atomic.Int64
	delayed    atomic.Int64
	duplicated atomic.Int64
	reordered  atomic.Int64
}

type pairFault struct {
	rng  uint64
	held *Message // a reordered message awaiting the pair's next transmit
}

// NewFaultInjector builds the injector for a fabric of the given size.
func NewFaultInjector(plan FaultPlan, ranks int) *FaultInjector {
	f := &FaultInjector{plan: plan, ranks: ranks, pairs: make([]pairFault, ranks*ranks)}
	for i := range f.pairs {
		// splitmix64 of (seed, pair) gives independent streams per pair.
		f.pairs[i].rng = splitmix64(plan.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
	}
	return f
}

// Plan returns the plan the injector executes.
func (f *FaultInjector) Plan() FaultPlan { return f.plan }

// Transmit rolls each fault category once, in a fixed order, from the
// pair's PRNG stream and returns the resulting deliveries.
func (f *FaultInjector) Transmit(m Message) []Message {
	ps := &f.pairs[m.From*f.ranks+m.To]
	drop := ps.roll() < f.plan.Drop
	delay := ps.roll() < f.plan.Delay
	dup := ps.roll() < f.plan.Duplicate
	reorder := ps.roll() < f.plan.Reorder

	if delay {
		m.Delay += f.plan.DelayBy
		f.delayed.Add(1)
	}
	var out []Message
	switch {
	case drop:
		f.dropped.Add(1)
	case reorder && ps.held == nil:
		held := m
		// The sender may reuse m.Data for the stream's next message
		// (remote clusters do); a held-back message needs its own copy.
		held.Data = append([]float64(nil), m.Data...)
		ps.held = &held
		f.reordered.Add(1)
	default:
		out = append(out, m)
		if dup {
			out = append(out, m)
			f.duplicated.Add(1)
		}
	}
	// A held-back message rides behind the next delivery on its pair.
	if ps.held != nil && len(out) > 0 {
		out = append(out, *ps.held)
		ps.held = nil
	}
	return out
}

// CrashNow implements Crasher: true exactly once, for the planned rank at
// the first epoch at or past the planned step.
func (f *FaultInjector) CrashNow(rank, epoch int) bool {
	if f.plan.CrashStep <= 0 || rank != f.plan.CrashRank || epoch < f.plan.CrashStep {
		return false
	}
	return f.crashed.CompareAndSwap(false, true)
}

// Reset clears the reorder hold-back slots so a recovery restart does not
// replay stale payloads into fresh streams. PRNG positions and the
// consumed crash are kept — a recovered run continues the fault schedule
// rather than restarting it.
func (f *FaultInjector) Reset() {
	for i := range f.pairs {
		f.pairs[i].held = nil
	}
}

// Stats returns the committed-fault counters.
func (f *FaultInjector) Stats() InjectStats {
	return InjectStats{
		Dropped:    f.dropped.Load(),
		Delayed:    f.delayed.Load(),
		Duplicated: f.duplicated.Load(),
		Reordered:  f.reordered.Load(),
	}
}

// roll draws the next uniform float64 in [0, 1) from the pair stream.
func (ps *pairFault) roll() float64 {
	ps.rng = splitmix64(ps.rng)
	return float64(ps.rng>>11) / (1 << 53)
}

// splitmix64 is the standard 64-bit mixing step (Steele et al.), enough
// PRNG for fault decisions and fully deterministic.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
