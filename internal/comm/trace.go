package comm

import "time"

// TraceSink receives paired send/recv span notifications from the
// message layer — the hook distributed tracing hangs off. Two layers
// feed it, never both for the same message:
//
//   - In-process clusters record at the endpoint: Send and the delivery
//     sites call the sink directly, with seq numbering each (peer, tag)
//     stream's deliveries in order on both sides, so a sender's n-th
//     send pairs with the receiver's n-th receive.
//   - Remote clusters record at the wire layer (internal/wire), where
//     the frame header carries the sender's clock and the wire seq
//     provides the pairing; the endpoint stays silent (SetTraceSink
//     ignores the sink when a RemoteLink is attached).
//
// Implementations must be safe for concurrent use: the wire fabric
// calls from its writer and reader goroutines.
type TraceSink interface {
	// RecordSend is called after a message to peer is handed to the
	// fabric. step is the driver's current timestep (SetTraceStep).
	RecordSend(peer int, tag Tag, seq uint64, step int, bytes int, at time.Time)

	// RecordRecv is called when a message from peer is delivered to the
	// application. sendNs is the sender's wall clock at transmit time in
	// unix nanoseconds (0 when unknown, e.g. in-process delivery where
	// both ends share a clock and the send span already carries it).
	RecordRecv(peer int, tag Tag, seq uint64, step int, bytes int, at time.Time, sendNs int64)
}

// SetTraceSink attaches a span sink to this endpoint. On a remote
// cluster the call is a no-op: the wire fabric records spans with frame
// timestamps instead (attach the sink there), and recording at both
// layers would double-count every message.
func (e *Endpoint) SetTraceSink(s TraceSink) {
	if e.c.remote != nil {
		return
	}
	e.sink = s
	if s != nil && e.traceSendSeq == nil {
		e.traceSendSeq = make(map[pairKey]uint64)
		e.traceRecvSeq = make(map[pairKey]uint64)
	}
}

// SetTraceStep stamps subsequent spans with the driver's timestep.
// Endpoint-goroutine only, like every other Endpoint method.
func (e *Endpoint) SetTraceStep(step int) { e.traceStep = step }

// traceSend numbers and records one outgoing message. The ordinal
// counter (not the FT protocol's seq) is used so reliable and
// fault-tolerant clusters pair spans identically: each stream delivers
// every message exactly once, in order, on both cluster kinds.
func (e *Endpoint) traceSend(to int, tag Tag, bytes int) {
	if e.sink == nil {
		return
	}
	k := pairKey{to, tag}
	seq := e.traceSendSeq[k]
	e.traceSendSeq[k] = seq + 1
	e.sink.RecordSend(to, tag, seq, e.traceStep, bytes, time.Now())
}

// traceRecv numbers and records one delivered message.
func (e *Endpoint) traceRecv(from int, tag Tag, bytes int) {
	if e.sink == nil {
		return
	}
	k := pairKey{from, tag}
	seq := e.traceRecvSeq[k]
	e.traceRecvSeq[k] = seq + 1
	e.sink.RecordRecv(from, tag, seq, e.traceStep, bytes, time.Now(), 0)
}

// addWait accounts blocked time to the endpoint's total wait and to the
// phase class the tag belongs to: the dt allreduce (TagReduce) or the
// ghost/boundary exchanges (everything else). The split is what the
// stall report attributes step time with.
func (e *Endpoint) addWait(tag Tag, d time.Duration) {
	if d <= 0 {
		return
	}
	e.waitNanos.Add(int64(d))
	if tag == TagReduce {
		e.reduceWaitNs.Add(int64(d))
	} else {
		e.ghostWaitNs.Add(int64(d))
	}
}

// WaitBuckets reports the endpoint's blocked time split by phase class:
// ghost/boundary exchanges versus the dt allreduce.
func (e *Endpoint) WaitBuckets() (ghost, reduce time.Duration) {
	return time.Duration(e.ghostWaitNs.Load()), time.Duration(e.reduceWaitNs.Load())
}
