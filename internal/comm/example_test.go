package comm_test

import (
	"fmt"
	"sync"
	"time"

	"lulesh/internal/comm"
	"lulesh/internal/wire"
)

// lossyOnce is a Transport that drops the first message it carries and
// delivers everything else unchanged — the smallest possible custom fault
// model.
type lossyOnce struct{ dropped bool }

func (l *lossyOnce) Transmit(m comm.Message) []comm.Message {
	if !l.dropped {
		l.dropped = true
		return nil // an empty slice drops the message
	}
	return []comm.Message{m}
}

// ExampleTransport shows the fault-tolerant receive path recovering a
// dropped message through the deadline/resend protocol: the receiver's
// deadline fires, a resend request reaches the sender, and the
// retransmission delivers the payload.
func ExampleTransport() {
	c := comm.NewClusterOptions(2, comm.Options{
		Transport:        &lossyOnce{},
		ExchangeDeadline: 2 * time.Millisecond,
		RetryLimit:       4,
	})
	sender, receiver := c.Endpoint(0), c.Endpoint(1)

	done := make(chan struct{})
	go func() {
		defer close(done)
		sender.Send(1, comm.TagForceX, []float64{3.5})
		// The transport dropped that send. A rank that only sends must
		// poll for its peers' resend requests; ranks blocked in
		// RecvDeadline service them automatically.
		for {
			select {
			case <-time.After(100 * time.Microsecond):
				sender.Poll()
			case <-done:
				return
			}
		}
	}()

	data, err := receiver.RecvDeadline(0, comm.TagForceX)
	done <- struct{}{}
	fmt.Println(data, err)

	stats := c.FabricStats()
	fmt.Println("recovered:", stats.Retries >= 1 && stats.ResendsServed >= 1)
	// Output:
	// [3.5] <nil>
	// recovered: true
}

// Example_remote sends a slab between two comm endpoints whose cluster
// spans real TCP sockets: each side joins a wire fabric (rank 0 listens
// on the rendezvous, rank 1 dials it and proves the shared cookie), and
// from there Send/RecvDeadline behave exactly as they do in-process —
// the socket is invisible above the RemoteLink seam.
func Example_remote() {
	rdv, err := wire.PickRendezvous()
	if err != nil {
		panic(err)
	}
	join := func(rank int) *wire.Fabric {
		f, err := wire.Join(wire.Config{
			Rank: rank, Size: 2, Rendezvous: rdv, Cookie: "example",
			Geometry: wire.Geometry{Size: 8, Iterations: 1, Schedule: "sync"},
		})
		if err != nil {
			panic(err)
		}
		return f
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the peer process's rank, here hosted by a goroutine
		defer wg.Done()
		fab := join(1)
		defer fab.Close()
		ep := fab.Cluster(comm.Options{}).Endpoint(1)
		ep.Send(0, comm.TagReduce, []float64{1, 2, 3})
		fab.Goodbye()
		fab.Linger(ep, time.Second)
	}()

	fab := join(0)
	defer fab.Close()
	ep := fab.Cluster(comm.Options{}).Endpoint(0)
	data, err := ep.RecvDeadline(1, comm.TagReduce)
	fmt.Println(data, err)
	fab.Goodbye()
	fab.Linger(ep, time.Second)
	wg.Wait()

	// Output:
	// [1 2 3] <nil>
}

// ExampleParseFaultPlan parses the -faults command-line syntax.
func ExampleParseFaultPlan() {
	plan, err := comm.ParseFaultPlan("drop=0.05,delay=0.02:500us,crash=1@20", 42)
	if err != nil {
		panic(err)
	}
	fmt.Println("drop:", plan.Drop)
	fmt.Println("delay:", plan.Delay, plan.DelayBy)
	fmt.Println("crash: rank", plan.CrashRank, "at step", plan.CrashStep)
	fmt.Println("active:", plan.Active())
	// Output:
	// drop: 0.05
	// delay: 0.02 500µs
	// crash: rank 1 at step 20
	// active: true
}

// ExampleDelay injects a deterministic 3ms one-way wire latency under a
// two-rank exchange: the payload arrives intact, but only after the link
// delay has elapsed — the knob the overlap experiments use to magnify
// communication cost without any randomness.
func ExampleDelay() {
	const link = 3 * time.Millisecond
	c := comm.NewClusterOptions(2, comm.Options{
		Transport:        comm.NewDelay(link, nil),
		ExchangeDeadline: 100 * time.Millisecond,
	})
	go c.Endpoint(0).Send(1, comm.TagForceX, []float64{1.25})

	start := time.Now()
	data, err := c.Endpoint(1).RecvDeadline(0, comm.TagForceX)
	fmt.Println(data, err)
	fmt.Println("waited at least one link delay:", time.Since(start) >= link)
	// Output:
	// [1.25] <nil>
	// waited at least one link delay: true
}

// ExampleEndpoint_AllReduceMinTree runs the binomial-tree allreduce on a
// four-rank fabric: every rank contributes its own [dtcourant, dthydro]
// pair and every rank receives the element-wise global minimum — the same
// value AllReduceMin computes, in 2·log2(4) = 4 hops on the critical path
// instead of a linear gather serialized on rank 0.
func ExampleEndpoint_AllReduceMinTree() {
	const n = 4
	c := comm.NewCluster(n)
	results := make([][]float64, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			mine := []float64{float64(10 + r), float64(20 - r)}
			out, err := c.Endpoint(r).AllReduceMinTree(mine)
			if err != nil {
				panic(err)
			}
			results[r] = out
		}(r)
	}
	wg.Wait()

	agree := true
	for r := 1; r < n; r++ {
		agree = agree && fmt.Sprint(results[r]) == fmt.Sprint(results[0])
	}
	fmt.Println("global minimum:", results[0])
	fmt.Println("all ranks agree:", agree)
	// Output:
	// global minimum: [10 17]
	// all ranks agree: true
}

// ExampleFaultInjector demonstrates that the injector's fault schedule is a
// pure function of (seed, per-pair message order): two injectors with the
// same plan make identical decisions.
func ExampleFaultInjector() {
	plan := comm.FaultPlan{Seed: 7, Drop: 0.25}
	a := comm.NewFaultInjector(plan, 2)
	b := comm.NewFaultInjector(plan, 2)

	identical := true
	for i := 0; i < 1000; i++ {
		m := comm.Message{From: 0, To: 1, Tag: comm.TagForceX, Seq: uint64(i)}
		if len(a.Transmit(m)) != len(b.Transmit(m)) {
			identical = false
		}
	}
	fmt.Println("deterministic:", identical)
	fmt.Println("dropped out of 1000:", a.Stats().Dropped)
	// Output:
	// deterministic: true
	// dropped out of 1000: 243
}
