package comm

import (
	"sync"
	"testing"
	"time"
)

type testSink struct {
	mu    sync.Mutex
	sends []testSpan
	recvs []testSpan
}

type testSpan struct {
	peer  int
	tag   Tag
	seq   uint64
	step  int
	bytes int
}

func (s *testSink) RecordSend(peer int, tag Tag, seq uint64, step, bytes int, at time.Time) {
	s.mu.Lock()
	s.sends = append(s.sends, testSpan{peer, tag, seq, step, bytes})
	s.mu.Unlock()
}

func (s *testSink) RecordRecv(peer int, tag Tag, seq uint64, step, bytes int, at time.Time, sendNs int64) {
	s.mu.Lock()
	s.recvs = append(s.recvs, testSpan{peer, tag, seq, step, bytes})
	s.mu.Unlock()
}

// Blocked receive time must land in the right attribution bucket: ghost
// tags into WaitGhost, the dt allreduce tag into WaitReduce, and the two
// must sum to the legacy Wait counter.
func TestWaitBucketSplit(t *testing.T) {
	c := NewClusterLatency(2, 10*time.Millisecond)
	a, b := c.Endpoint(0), c.Endpoint(1)

	a.Send(1, TagDelvXi, []float64{1})
	b.Recv(0, TagDelvXi)
	a.Send(1, TagReduce, []float64{2})
	b.Recv(0, TagReduce)

	st := b.StatsSnapshot()
	if st.WaitGhost <= 0 {
		t.Errorf("ghost wait %v, want > 0 (10ms latency)", st.WaitGhost)
	}
	if st.WaitReduce <= 0 {
		t.Errorf("reduce wait %v, want > 0 (10ms latency)", st.WaitReduce)
	}
	if got := st.WaitGhost + st.WaitReduce; got != st.Wait {
		t.Errorf("buckets %v do not sum to total wait %v", got, st.Wait)
	}

	g, r := b.WaitBuckets()
	if g != st.WaitGhost || r != st.WaitReduce {
		t.Errorf("WaitBuckets (%v, %v) disagrees with stats (%v, %v)",
			g, r, st.WaitGhost, st.WaitReduce)
	}
	b.ResetStats()
	if g, r := b.WaitBuckets(); g != 0 || r != 0 {
		t.Errorf("reset left buckets (%v, %v)", g, r)
	}
}

// In-process endpoints feed the trace sink with per-stream ordinals:
// both sides of a message agree on (tag, ordinal), and the driver's
// step stamp rides along.
func TestEndpointTraceSink(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Endpoint(0), c.Endpoint(1)
	sa, sb := &testSink{}, &testSink{}
	a.SetTraceSink(sa)
	b.SetTraceSink(sb)

	a.SetTraceStep(3)
	b.SetTraceStep(3)
	for i := 0; i < 2; i++ {
		a.Send(1, TagForceX, []float64{float64(i), 0})
		b.Recv(0, TagForceX)
	}

	sa.mu.Lock()
	sends := append([]testSpan(nil), sa.sends...)
	sa.mu.Unlock()
	sb.mu.Lock()
	recvs := append([]testSpan(nil), sb.recvs...)
	sb.mu.Unlock()

	if len(sends) != 2 || len(recvs) != 2 {
		t.Fatalf("got %d sends, %d recvs, want 2 each", len(sends), len(recvs))
	}
	for i := 0; i < 2; i++ {
		s, r := sends[i], recvs[i]
		if s.seq != uint64(i) || r.seq != uint64(i) {
			t.Errorf("message %d: ordinals (%d, %d), want %d on both sides", i, s.seq, r.seq, i)
		}
		if s.peer != 1 || r.peer != 0 || s.tag != TagForceX || r.tag != TagForceX {
			t.Errorf("message %d: endpoints disagree: send %+v recv %+v", i, s, r)
		}
		if s.step != 3 || r.step != 3 {
			t.Errorf("message %d: steps (%d, %d), want 3", i, s.step, r.step)
		}
		if s.bytes != 16 || r.bytes != 16 {
			t.Errorf("message %d: sizes (%d, %d), want 16", i, s.bytes, r.bytes)
		}
	}
}
