// Package comm is the message-passing substrate of the multi-domain
// LULESH (internal/dist): a simulated cluster fabric in which each rank is
// a goroutine and messages travel over buffered channels. It stands in for
// MPI point-to-point communication in the paper's future-work experiment
// (multi-node LULESH, synchronous MPI-style exchange versus asynchronous
// overlap), preserving the properties that matter for that comparison:
// per-pair message ordering, blocking receives with measurable wait time,
// and payload copying on send (no shared mutable buffers).
package comm

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Tag identifies the exchange phase a message belongs to, mirroring MPI
// message tags.
type Tag int

// Exchange phases of the multi-domain leapfrog.
const (
	TagNodalMass Tag = iota + 1
	TagForceX
	TagForceY
	TagForceZ
	TagDelvXi
	TagDelvEta
	TagDelvZeta
	TagReduce
)

func (t Tag) String() string {
	switch t {
	case TagNodalMass:
		return "nodalMass"
	case TagForceX:
		return "forceX"
	case TagForceY:
		return "forceY"
	case TagForceZ:
		return "forceZ"
	case TagDelvXi:
		return "delvXi"
	case TagDelvEta:
		return "delvEta"
	case TagDelvZeta:
		return "delvZeta"
	case TagReduce:
		return "reduce"
	default:
		return fmt.Sprintf("tag(%d)", int(t))
	}
}

type message struct {
	tag   Tag
	data  []float64
	ready time.Time // earliest delivery instant (simulated link latency)
}

// Cluster is a fully connected fabric of size ranks.
type Cluster struct {
	size    int
	latency time.Duration
	pipes   [][]chan message // pipes[from][to]
}

// channel capacity per directed pair; the leapfrog protocol has at most a
// handful of in-flight messages per pair per iteration.
const pipeCap = 16

// NewCluster creates a zero-latency fabric connecting n ranks.
func NewCluster(n int) *Cluster { return NewClusterLatency(n, 0) }

// NewClusterLatency creates a fabric whose messages become visible to the
// receiver only after the given one-way latency — the model of a real
// interconnect that makes the synchronous-vs-overlapped comparison
// meaningful: a blocking receive pays the remaining latency as wait time,
// while an overlapped schedule computes through it.
func NewClusterLatency(n int, latency time.Duration) *Cluster {
	if n < 1 {
		panic(fmt.Sprintf("comm: cluster size must be >= 1, got %d", n))
	}
	c := &Cluster{size: n, latency: latency, pipes: make([][]chan message, n)}
	for from := 0; from < n; from++ {
		c.pipes[from] = make([]chan message, n)
		for to := 0; to < n; to++ {
			if from != to {
				c.pipes[from][to] = make(chan message, pipeCap)
			}
		}
	}
	return c
}

// Latency reports the fabric's one-way message latency.
func (c *Cluster) Latency() time.Duration { return c.latency }

// Size reports the number of ranks.
func (c *Cluster) Size() int { return c.size }

// Endpoint returns rank r's communication endpoint.
func (c *Cluster) Endpoint(r int) *Endpoint {
	if r < 0 || r >= c.size {
		panic(fmt.Sprintf("comm: rank %d out of [0,%d)", r, c.size))
	}
	return &Endpoint{c: c, rank: r, heads: make(map[int]message)}
}

// Endpoint is one rank's view of the fabric. Each endpoint must be used by
// a single goroutine (like an MPI rank).
type Endpoint struct {
	c    *Cluster
	rank int

	// heads holds one popped-but-not-yet-deliverable message per peer
	// (TryRecv may pull a message from the pipe before its latency has
	// elapsed). Endpoints are single-goroutine, so no locking.
	heads map[int]message

	waitNanos atomic.Int64 // time spent blocked in Recv
	sent      atomic.Int64 // messages sent
	received  atomic.Int64 // messages received
	bytesSent atomic.Int64
}

// Rank reports this endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// Size reports the cluster size.
func (e *Endpoint) Size() int { return e.c.size }

// Send transmits a copy of data to rank `to`. It is non-blocking as long
// as fewer than pipeCap messages are in flight to the same peer (the
// analog of MPI eager sends); exceeding that blocks until the peer drains.
func (e *Endpoint) Send(to int, tag Tag, data []float64) {
	if to == e.rank {
		panic("comm: send to self")
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	m := message{tag: tag, data: cp}
	if e.c.latency > 0 {
		m.ready = time.Now().Add(e.c.latency)
	}
	e.c.pipes[e.rank][to] <- m
	e.sent.Add(1)
	e.bytesSent.Add(int64(8 * len(data)))
}

// Recv blocks until the next message from rank `from` has arrived and its
// simulated link latency has elapsed, then returns its payload. The
// message's tag must match: the exchange protocol is deterministic per
// pair, so a mismatch is a protocol error and panics. Blocked time —
// both waiting for the sender and waiting out the latency — is accounted
// to the endpoint's wait counter.
func (e *Endpoint) Recv(from int, tag Tag) []float64 {
	m, ok := e.takeHead(from)
	if !ok {
		ch := e.c.pipes[from][e.rank]
		select {
		case m = <-ch:
		default:
			start := time.Now()
			m = <-ch
			e.waitNanos.Add(int64(time.Since(start)))
		}
	}
	if !m.ready.IsZero() {
		if remaining := time.Until(m.ready); remaining > 0 {
			time.Sleep(remaining)
			e.waitNanos.Add(int64(remaining))
		}
	}
	e.checkTag(from, tag, m.tag)
	e.received.Add(1)
	return m.data
}

// takeHead pops a previously peeked message for the given peer.
func (e *Endpoint) takeHead(from int) (message, bool) {
	m, ok := e.heads[from]
	if ok {
		delete(e.heads, from)
	}
	return m, ok
}

func (e *Endpoint) checkTag(from int, want, got Tag) {
	if want != got {
		panic(fmt.Sprintf("comm: rank %d expected %v from rank %d, got %v",
			e.rank, want, from, got))
	}
}

// TryRecv returns the next message from `from` if one has arrived and its
// latency has elapsed, without blocking. Used by asynchronous exchanges to
// poll while overlapping computation.
func (e *Endpoint) TryRecv(from int, tag Tag) ([]float64, bool) {
	m, ok := e.takeHead(from)
	if !ok {
		select {
		case m = <-e.c.pipes[from][e.rank]:
		default:
			return nil, false
		}
	}
	if !m.ready.IsZero() && time.Now().Before(m.ready) {
		e.heads[from] = m // keep for a later attempt
		return nil, false
	}
	e.checkTag(from, tag, m.tag)
	e.received.Add(1)
	return m.data, true
}

// Stats summarizes an endpoint's communication activity.
type Stats struct {
	Rank      int
	Wait      time.Duration // time blocked in Recv
	Sent      int64
	Received  int64
	BytesSent int64
}

// StatsSnapshot returns the endpoint's accumulated counters.
func (e *Endpoint) StatsSnapshot() Stats {
	return Stats{
		Rank:      e.rank,
		Wait:      time.Duration(e.waitNanos.Load()),
		Sent:      e.sent.Load(),
		Received:  e.received.Load(),
		BytesSent: e.bytesSent.Load(),
	}
}

// ResetStats zeroes the endpoint counters.
func (e *Endpoint) ResetStats() {
	e.waitNanos.Store(0)
	e.sent.Store(0)
	e.received.Store(0)
	e.bytesSent.Store(0)
}

// AllReduceMin folds vals element-wise with min across all ranks and
// returns the global result on every rank. Implemented as a gather to
// rank 0 and a broadcast, with a deterministic (rank-ascending) fold
// order; min is exact, so the order does not affect the value.
func (e *Endpoint) AllReduceMin(vals []float64) []float64 {
	n := e.c.size
	if n == 1 {
		out := make([]float64, len(vals))
		copy(out, vals)
		return out
	}
	if e.rank == 0 {
		acc := make([]float64, len(vals))
		copy(acc, vals)
		for from := 1; from < n; from++ {
			theirs := e.Recv(from, TagReduce)
			if len(theirs) != len(acc) {
				panic("comm: AllReduceMin length mismatch")
			}
			for i, v := range theirs {
				if v < acc[i] {
					acc[i] = v
				}
			}
		}
		for to := 1; to < n; to++ {
			e.Send(to, TagReduce, acc)
		}
		return acc
	}
	e.Send(0, TagReduce, vals)
	return e.Recv(0, TagReduce)
}
