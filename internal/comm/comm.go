// Package comm is the message-passing substrate of the multi-domain
// LULESH (internal/dist). It stands in for MPI point-to-point
// communication in the paper's future-work experiment (multi-node LULESH,
// synchronous MPI-style exchange versus asynchronous overlap), preserving
// the properties that matter for that comparison: per-pair message
// ordering, blocking receives with measurable wait time, and no shared
// mutable buffers between sender and receiver.
//
// The fabric comes in two physical forms behind one Endpoint API. An
// in-process cluster (NewCluster and friends) runs each rank as a
// goroutine with messages travelling over buffered channels — the
// original simulated fabric. A remote cluster (NewRemoteCluster) holds
// exactly one rank per OS process and moves messages through a RemoteLink
// — the TCP fabric of internal/wire — so the same exchange protocol runs
// over real sockets between real processes. The protocol code is shared:
// everything below about sequencing, deadlines and recovery applies to
// both forms.
//
// # Fault tolerance
//
// Clusters built with NewClusterOptions run in fault-tolerant mode: every
// send is routed through a pluggable Transport (the seed-driven
// FaultInjector can drop, delay, duplicate and reorder messages, and crash
// a whole rank at a chosen step), and the receive side compensates.
// Messages carry per-(pair, tag) sequence numbers; RecvDeadline filters
// duplicates, restores order, and — when the expected message does not
// arrive within the exchange deadline — asks the sender to retransmit
// from its per-stream resend buffer, backing off exponentially up to the
// retry limit before failing with ErrExchangeTimeout. A crashed peer stops
// answering resend requests, so the deadline doubles as the failure
// detector. Clusters built with NewCluster/NewClusterLatency skip all of
// this: the reliable channel transport is the zero-cost default.
package comm

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Tag identifies the exchange phase a message belongs to, mirroring MPI
// message tags.
type Tag int

// Exchange phases of the multi-domain leapfrog.
const (
	TagNodalMass Tag = iota + 1
	TagForceX
	TagForceY
	TagForceZ
	TagDelvXi
	TagDelvEta
	TagDelvZeta
	TagReduce
	TagTrace  // post-run trace-snapshot gather to rank 0
	TagForces // coalesced boundary forces: Fx|Fy|Fz in one frame per peer
	TagDelv   // coalesced boundary gradients: DelvXi|Eta|Zeta in one frame per peer
)

func (t Tag) String() string {
	switch t {
	case TagNodalMass:
		return "nodalMass"
	case TagForceX:
		return "forceX"
	case TagForceY:
		return "forceY"
	case TagForceZ:
		return "forceZ"
	case TagDelvXi:
		return "delvXi"
	case TagDelvEta:
		return "delvEta"
	case TagDelvZeta:
		return "delvZeta"
	case TagReduce:
		return "reduce"
	case TagTrace:
		return "trace"
	case TagForces:
		return "forces"
	case TagDelv:
		return "delv"
	default:
		return fmt.Sprintf("tag(%d)", int(t))
	}
}

// Typed failures of the fault-tolerant exchange. Both are recoverable by
// the distributed driver's checkpoint/restart machinery; physics errors
// are not wrapped in either.
var (
	// ErrExchangeTimeout: a receive exhausted its deadline and retry
	// budget — the failure-detection signal for a dead or unreachable peer.
	ErrExchangeTimeout = errors.New("comm: exchange deadline exceeded")

	// ErrRankCrashed: a whole rank is gone — the fault plan scheduled this
	// rank's crash, or (on a remote cluster) a peer's connection was lost.
	// The rank holding the error must abandon the protocol immediately.
	ErrRankCrashed = errors.New("comm: rank crashed")
)

type message struct {
	tag   Tag
	seq   uint64 // per-(pair, tag) stream sequence (fault-tolerant mode)
	data  []float64
	ready time.Time // earliest delivery instant (simulated link latency)
}

// ctrlMsg is a resend request: "retransmit (tag, seq) to rank from".
type ctrlMsg struct {
	from int
	tag  Tag
	seq  uint64
}

// Options configures a fault-tolerant fabric.
type Options struct {
	// Latency is the one-way link latency (0 = instant delivery).
	Latency time.Duration

	// Transport intercepts every send. nil selects Reliable. Supplying a
	// FaultInjector (or any custom Transport) enables the fault-tolerant
	// receive path.
	Transport Transport

	// ExchangeDeadline bounds each wait for an expected message before a
	// resend request is issued; it doubles after every retry
	// (exponential backoff). 0 = DefaultExchangeDeadline.
	ExchangeDeadline time.Duration

	// RetryLimit is how many resend requests a receive issues before
	// failing with ErrExchangeTimeout. 0 = DefaultRetryLimit.
	RetryLimit int
}

// Defaults for Options' zero values: the deadline must comfortably exceed
// one compute phase so retries mean "message lost", not "peer still busy".
const (
	DefaultExchangeDeadline = 100 * time.Millisecond
	DefaultRetryLimit       = 6
)

// Cluster is a fully connected fabric of size ranks.
type Cluster struct {
	size    int
	latency time.Duration
	pipes   [][]chan message // pipes[from][to]

	// Remote mode (nil = every rank is an in-process goroutine): only
	// rank `local` lives here; everything else goes through the link.
	remote RemoteLink
	local  int

	// Fault-tolerant mode (nil transport = reliable fast path).
	tr         Transport
	deadline   time.Duration
	retryLimit int
	ctrl       []chan ctrlMsg // ctrl[rank]: resend requests addressed to rank
	counters   fabricCounters
}

// fabricCounters aggregates the recovery protocol's activity across all
// endpoints (atomics: endpoints on different goroutines share them).
type fabricCounters struct {
	retries   atomic.Int64 // resend requests issued
	timeouts  atomic.Int64 // receives that exhausted their retry budget
	resends   atomic.Int64 // resend requests served from a send buffer
	dups      atomic.Int64 // duplicate deliveries discarded by seq filter
	overflows atomic.Int64 // sends dropped because the peer stopped draining
	crashes   atomic.Int64 // injected whole-rank crashes taken
}

// FabricStats is a snapshot of the fabric-wide fault-tolerance counters,
// combining the endpoints' recovery activity with the injector's committed
// faults (zero when the cluster runs the reliable default transport).
type FabricStats struct {
	Retries           int64 // resend requests issued by receivers
	Timeouts          int64 // receives that gave up (failure detections)
	ResendsServed     int64 // retransmissions served by senders
	DuplicatesDropped int64 // deliveries discarded by the sequence filter
	OverflowDropped   int64 // sends dropped on a full pipe (peer gone)
	Crashes           int64 // injected rank crashes taken
	Injected          InjectStats
}

// channel capacity per directed pair; the leapfrog protocol has at most a
// handful of in-flight messages per pair per iteration, plus headroom for
// injected duplicates and retransmissions.
const pipeCap = 32

// NewCluster creates a zero-latency fabric connecting n ranks.
func NewCluster(n int) *Cluster { return NewClusterLatency(n, 0) }

// NewClusterLatency creates a fabric whose messages become visible to the
// receiver only after the given one-way latency — the model of a real
// interconnect that makes the synchronous-vs-overlapped comparison
// meaningful: a blocking receive pays the remaining latency as wait time,
// while an overlapped schedule computes through it.
func NewClusterLatency(n int, latency time.Duration) *Cluster {
	return newCluster(n, latency)
}

// NewClusterOptions creates a fault-tolerant fabric: sends go through
// opt.Transport (Reliable when nil) and receives run the sequence-checked
// deadline/retry/backoff protocol. See the package comment.
func NewClusterOptions(n int, opt Options) *Cluster {
	c := newCluster(n, opt.Latency)
	c.tr = opt.Transport
	if c.tr == nil {
		c.tr = Reliable{}
	}
	c.deadline = opt.ExchangeDeadline
	if c.deadline <= 0 {
		c.deadline = DefaultExchangeDeadline
	}
	c.retryLimit = opt.RetryLimit
	if c.retryLimit <= 0 {
		c.retryLimit = DefaultRetryLimit
	}
	c.ctrl = make([]chan ctrlMsg, n)
	for i := range c.ctrl {
		c.ctrl[i] = make(chan ctrlMsg, 8*n)
	}
	return c
}

func newCluster(n int, latency time.Duration) *Cluster {
	if n < 1 {
		panic(fmt.Sprintf("comm: cluster size must be >= 1, got %d", n))
	}
	c := &Cluster{size: n, latency: latency, pipes: make([][]chan message, n)}
	for from := 0; from < n; from++ {
		c.pipes[from] = make([]chan message, n)
		for to := 0; to < n; to++ {
			if from != to {
				c.pipes[from][to] = make(chan message, pipeCap)
			}
		}
	}
	return c
}

// ft reports whether the fault-tolerant path is active.
func (c *Cluster) ft() bool { return c.tr != nil }

// Latency reports the fabric's one-way message latency.
func (c *Cluster) Latency() time.Duration { return c.latency }

// Size reports the number of ranks.
func (c *Cluster) Size() int { return c.size }

// FabricStats snapshots the fault-tolerance counters (all zero for a
// reliable cluster).
func (c *Cluster) FabricStats() FabricStats {
	fs := FabricStats{
		Retries:           c.counters.retries.Load(),
		Timeouts:          c.counters.timeouts.Load(),
		ResendsServed:     c.counters.resends.Load(),
		DuplicatesDropped: c.counters.dups.Load(),
		OverflowDropped:   c.counters.overflows.Load(),
		Crashes:           c.counters.crashes.Load(),
	}
	// The injector may sit behind wrapping transports (e.g. Delay); walk
	// the chain so injected-fault stats stay visible either way.
	for tr := c.tr; tr != nil; {
		if inj, ok := tr.(*FaultInjector); ok {
			fs.Injected = inj.Stats()
			break
		}
		u, ok := tr.(interface{ Unwrap() Transport })
		if !ok {
			break
		}
		tr = u.Unwrap()
	}
	return fs
}

// Endpoint returns rank r's communication endpoint. On a remote cluster
// only the local rank's endpoint exists in this process.
func (c *Cluster) Endpoint(r int) *Endpoint {
	if r < 0 || r >= c.size {
		panic(fmt.Sprintf("comm: rank %d out of [0,%d)", r, c.size))
	}
	if c.remote != nil && r != c.local {
		panic(fmt.Sprintf("comm: rank %d is not local to this process (local rank %d)", r, c.local))
	}
	e := &Endpoint{c: c, rank: r, heads: make(map[int]message)}
	if c.ft() {
		e.sendSeq = make(map[pairKey]uint64)
		e.sendBuf = make(map[pairKey]sentEntry)
		e.recvSeq = make(map[pairKey]uint64)
		e.mail = make(map[pairKey]map[uint64]message)
	}
	return e
}

// pairKey identifies one directed (peer, tag) message stream.
type pairKey struct {
	peer int
	tag  Tag
}

// sentEntry is a stream's most recent payload, kept for retransmission.
type sentEntry struct {
	seq  uint64
	data []float64
}

// Endpoint is one rank's view of the fabric. Each endpoint must be used by
// a single goroutine (like an MPI rank).
type Endpoint struct {
	c    *Cluster
	rank int

	// heads holds one popped-but-not-yet-deliverable message per peer
	// (TryRecv may pull a message from the pipe before its latency has
	// elapsed). Endpoints are single-goroutine, so no locking.
	heads map[int]message

	// Fault-tolerant streams (nil on reliable clusters). Single-goroutine,
	// like heads.
	sendSeq map[pairKey]uint64             // next seq per outgoing stream
	sendBuf map[pairKey]sentEntry          // resend buffer per outgoing stream
	recvSeq map[pairKey]uint64             // next expected seq per incoming stream
	mail    map[pairKey]map[uint64]message // out-of-order arrivals by seq

	waitNanos    atomic.Int64 // time spent blocked in Recv
	ghostWaitNs  atomic.Int64 // wait attributed to ghost/boundary exchanges
	reduceWaitNs atomic.Int64 // wait attributed to the dt allreduce
	sent         atomic.Int64 // messages sent
	received     atomic.Int64 // messages received
	bytesSent    atomic.Int64
	retries      atomic.Int64 // resend requests this endpoint issued
	timeouts     atomic.Int64 // failed exchanges on this endpoint

	// Distributed tracing (nil sink = disabled; see trace.go). The span
	// seq counters are ordinal per stream, independent of the FT seqs.
	sink         TraceSink
	traceStep    int
	traceSendSeq map[pairKey]uint64
	traceRecvSeq map[pairKey]uint64
}

// Rank reports this endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// Size reports the cluster size.
func (e *Endpoint) Size() int { return e.c.size }

// Send transmits a copy of data to rank `to`. On a reliable cluster it is
// non-blocking as long as fewer than pipeCap messages are in flight to the
// same peer (the analog of MPI eager sends); exceeding that blocks until
// the peer drains. On a fault-tolerant cluster the message is stamped with
// its stream sequence number, retained for retransmission, and routed
// through the Transport; a full pipe then drops the message instead of
// blocking (a crashed peer must not wedge its neighbours), counting on the
// resend protocol to recover it.
func (e *Endpoint) Send(to int, tag Tag, data []float64) {
	if to == e.rank {
		panic("comm: send to self")
	}
	e.sent.Add(1)
	e.bytesSent.Add(int64(8 * len(data)))
	e.traceSend(to, tag, 8*len(data))
	if e.c.ft() {
		k := pairKey{to, tag}
		seq := e.sendSeq[k]
		e.sendSeq[k] = seq + 1
		var buf []float64
		if e.c.remote != nil {
			// Remote mode reuses the stream's resend buffer: the link fully
			// serializes the payload before SendData returns and transports
			// may not retain Data (see Transport), so steady-state ghost
			// exchange allocates nothing on the send path.
			buf = e.sendBuf[k].data
			if cap(buf) < len(data) {
				buf = make([]float64, len(data))
			}
			buf = buf[:len(data)]
		} else {
			// In-process delivery hands the slice to the receiver by
			// reference, so every send needs a fresh copy.
			buf = make([]float64, len(data))
		}
		copy(buf, data)
		e.sendBuf[k] = sentEntry{seq: seq, data: buf}
		e.transmit(Message{From: e.rank, To: to, Tag: tag, Seq: seq, Data: buf})
		return
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	m := message{tag: tag, data: cp}
	if e.c.latency > 0 {
		m.ready = time.Now().Add(e.c.latency)
	}
	e.c.pipes[e.rank][to] <- m
}

// transmit routes one stamped message through the transport and enqueues
// the resulting deliveries. Fault-tolerant path only. The identity
// transport skips the slice-returning Transmit call entirely, keeping the
// common path allocation-free.
func (e *Endpoint) transmit(m Message) {
	if _, reliable := e.c.tr.(Reliable); reliable {
		e.deliver(m)
		return
	}
	for _, d := range e.c.tr.Transmit(m) {
		e.deliver(d)
	}
}

// deliver enqueues one transport-approved delivery: into the peer's pipe
// in-process, or onto the wire on a remote cluster.
func (e *Endpoint) deliver(d Message) {
	if e.c.remote != nil {
		if err := e.c.remote.SendData(d.To, d.Tag, d.Seq, d.Delay, d.Data); err != nil {
			// The link refused (dead or wedged peer); the resend protocol —
			// or the peer-death detector — takes it from here.
			e.c.counters.overflows.Add(1)
		}
		return
	}
	msg := message{tag: d.Tag, seq: d.Seq, data: d.Data}
	if delay := e.c.latency + d.Delay; delay > 0 {
		msg.ready = time.Now().Add(delay)
	}
	select {
	case e.c.pipes[e.rank][d.To] <- msg:
	default:
		// The peer stopped draining (crashed or aborted); dropping here
		// keeps the sender alive, and the peer's deadline — or ours —
		// surfaces the failure.
		e.c.counters.overflows.Add(1)
	}
}

// Recv blocks until the next message from rank `from` has arrived and its
// simulated link latency has elapsed, then returns its payload. The
// message's tag must match: the exchange protocol is deterministic per
// pair, so a mismatch is a protocol error and panics. Blocked time —
// both waiting for the sender and waiting out the latency — is accounted
// to the endpoint's wait counter.
//
// Recv is the reliable-cluster primitive; fault-tolerant clusters must use
// RecvDeadline, which tolerates loss, duplication and reordering.
func (e *Endpoint) Recv(from int, tag Tag) []float64 {
	m, ok := e.takeHead(from)
	if !ok {
		ch := e.c.pipes[from][e.rank]
		select {
		case m = <-ch:
		default:
			start := time.Now()
			m = <-ch
			e.addWait(tag, time.Since(start))
		}
	}
	if !m.ready.IsZero() {
		if remaining := time.Until(m.ready); remaining > 0 {
			time.Sleep(remaining)
			e.addWait(tag, remaining)
		}
	}
	e.checkTag(from, tag, m.tag)
	e.received.Add(1)
	e.traceRecv(from, tag, 8*len(m.data))
	return m.data
}

// RecvDeadline returns the next in-sequence message of the (from, tag)
// stream. On a reliable cluster it is exactly Recv. On a fault-tolerant
// cluster it runs the recovery protocol: out-of-order and duplicate
// arrivals are reconciled through the per-stream mailbox, and when the
// expected sequence number has not arrived within the exchange deadline a
// resend request is sent to the peer, with exponential backoff, up to the
// retry limit — after which the peer is declared failed and
// ErrExchangeTimeout is returned. While blocked, the endpoint also
// services its peers' resend requests, which keeps mutual waits deadlock-
// free.
func (e *Endpoint) RecvDeadline(from int, tag Tag) ([]float64, error) {
	if !e.c.ft() {
		return e.Recv(from, tag), nil
	}
	k := pairKey{from, tag}
	want := e.recvSeq[k]
	if data, ok := e.takeMail(k, want); ok {
		return data, nil
	}
	start := time.Now()
	defer func() { e.addWait(tag, time.Since(start)) }()

	backoff := e.c.deadline
	timer := time.NewTimer(backoff)
	defer timer.Stop()
	retries := 0
	pipe := e.c.pipes[from][e.rank]
	for {
		select {
		case m := <-pipe:
			e.stash(k.peer, m)
		case req := <-e.c.ctrl[e.rank]:
			e.serviceResend(req)
		case <-timer.C:
			// On a remote cluster a lost peer connection is definitive:
			// fail fast instead of burning the retry budget. Checked only
			// here, after the pipe drained, because an orderly TCP close
			// delivers all data before the EOF that marks the peer dead.
			if derr := e.c.peerDead(from); derr != nil {
				e.c.counters.timeouts.Add(1)
				e.timeouts.Add(1)
				return nil, fmt.Errorf("rank %d waiting on rank %d for %v seq %d: peer lost (%v): %w",
					e.rank, from, tag, want, derr, ErrRankCrashed)
			}
			if retries >= e.c.retryLimit {
				e.c.counters.timeouts.Add(1)
				e.timeouts.Add(1)
				return nil, fmt.Errorf("rank %d waiting on rank %d for %v seq %d (%d retries): %w",
					e.rank, from, tag, want, retries, ErrExchangeTimeout)
			}
			retries++
			e.c.counters.retries.Add(1)
			e.retries.Add(1)
			e.requestResend(from, tag, want)
			backoff *= 2
			timer.Reset(backoff)
		}
		if data, ok := e.takeMail(k, want); ok {
			return data, nil
		}
	}
}

// stash files an arrival into its stream mailbox, discarding duplicates
// (sequence numbers already delivered or already stashed).
func (e *Endpoint) stash(from int, m message) {
	k := pairKey{from, m.tag}
	if m.seq < e.recvSeq[k] {
		e.c.counters.dups.Add(1)
		return
	}
	box := e.mail[k]
	if box == nil {
		box = make(map[uint64]message)
		e.mail[k] = box
	}
	if _, dup := box[m.seq]; dup {
		e.c.counters.dups.Add(1)
		return
	}
	box[m.seq] = m
}

// takeMail delivers the wanted sequence number from a stream mailbox if
// present, sleeping out any remaining simulated latency, and advances the
// stream cursor.
func (e *Endpoint) takeMail(k pairKey, want uint64) ([]float64, bool) {
	box := e.mail[k]
	m, ok := box[want]
	if !ok {
		return nil, false
	}
	delete(box, want)
	if !m.ready.IsZero() {
		if remaining := time.Until(m.ready); remaining > 0 {
			time.Sleep(remaining)
		}
	}
	e.recvSeq[k] = want + 1
	e.received.Add(1)
	e.traceRecv(k.peer, k.tag, 8*len(m.data))
	return m.data, true
}

// requestResend asks the peer to retransmit (tag, seq). Non-blocking: a
// full control channel (or a refused wire send) just means the next
// backoff round asks again.
func (e *Endpoint) requestResend(from int, tag Tag, seq uint64) {
	if e.c.remote != nil {
		_ = e.c.remote.SendCtrl(from, tag, seq)
		return
	}
	select {
	case e.c.ctrl[from] <- ctrlMsg{from: e.rank, tag: tag, seq: seq}:
	default:
	}
}

// serviceResend answers a peer's resend request from the send buffer. The
// stream's latest payload is retransmitted (the protocol keeps at most one
// message outstanding per stream, so the latest is the missing one);
// requests for sequence numbers not yet sent are ignored — the receiver's
// deadline fired while this rank was still computing, and the regular send
// will satisfy it.
func (e *Endpoint) serviceResend(req ctrlMsg) {
	k := pairKey{req.from, req.tag}
	ent, ok := e.sendBuf[k]
	if !ok || ent.seq < req.seq {
		return
	}
	e.c.counters.resends.Add(1)
	e.transmit(Message{From: e.rank, To: req.from, Tag: req.tag, Seq: ent.seq, Data: ent.data})
}

// Poll services any pending resend requests without blocking. The
// distributed protocol does this implicitly inside every RecvDeadline;
// callers whose ranks send without ever receiving (one-directional
// exchanges) must Poll to answer their peers' recovery traffic.
func (e *Endpoint) Poll() {
	if !e.c.ft() {
		return
	}
	for {
		select {
		case req := <-e.c.ctrl[e.rank]:
			e.serviceResend(req)
		default:
			return
		}
	}
}

// EnterEpoch advances this endpoint's comm epoch (the driver's timestep)
// and reports a scheduled whole-rank crash: ErrRankCrashed means the
// caller must abandon the protocol immediately, without flushing or
// announcing anything — its peers detect the loss by exchange deadline.
func (e *Endpoint) EnterEpoch(epoch int) error {
	if cr, ok := e.c.tr.(Crasher); ok && cr.CrashNow(e.rank, epoch) {
		e.c.counters.crashes.Add(1)
		return fmt.Errorf("rank %d at epoch %d: %w", e.rank, epoch, ErrRankCrashed)
	}
	return nil
}

// takeHead pops a previously peeked message for the given peer.
func (e *Endpoint) takeHead(from int) (message, bool) {
	m, ok := e.heads[from]
	if ok {
		delete(e.heads, from)
	}
	return m, ok
}

func (e *Endpoint) checkTag(from int, want, got Tag) {
	if want != got {
		panic(fmt.Sprintf("comm: rank %d expected %v from rank %d, got %v",
			e.rank, want, from, got))
	}
}

// TryRecv returns the next message from `from` if one has arrived and its
// latency has elapsed, without blocking. Used by asynchronous exchanges to
// poll while overlapping computation. Reliable clusters only.
func (e *Endpoint) TryRecv(from int, tag Tag) ([]float64, bool) {
	m, ok := e.takeHead(from)
	if !ok {
		select {
		case m = <-e.c.pipes[from][e.rank]:
		default:
			return nil, false
		}
	}
	if !m.ready.IsZero() && time.Now().Before(m.ready) {
		e.heads[from] = m // keep for a later attempt
		return nil, false
	}
	e.checkTag(from, tag, m.tag)
	e.received.Add(1)
	e.traceRecv(from, tag, 8*len(m.data))
	return m.data, true
}

// Stats summarizes an endpoint's communication activity.
type Stats struct {
	Rank       int
	Wait       time.Duration // time blocked in Recv
	WaitGhost  time.Duration // portion of Wait in ghost/boundary exchanges
	WaitReduce time.Duration // portion of Wait in the dt allreduce
	Sent       int64
	Received   int64
	BytesSent  int64
	Retries    int64 // resend requests issued (fault-tolerant mode)
	Timeouts   int64 // exchanges that exhausted the retry budget
}

// StatsSnapshot returns the endpoint's accumulated counters.
func (e *Endpoint) StatsSnapshot() Stats {
	return Stats{
		Rank:       e.rank,
		Wait:       time.Duration(e.waitNanos.Load()),
		WaitGhost:  time.Duration(e.ghostWaitNs.Load()),
		WaitReduce: time.Duration(e.reduceWaitNs.Load()),
		Sent:       e.sent.Load(),
		Received:   e.received.Load(),
		BytesSent:  e.bytesSent.Load(),
		Retries:    e.retries.Load(),
		Timeouts:   e.timeouts.Load(),
	}
}

// ResetStats zeroes the endpoint counters.
func (e *Endpoint) ResetStats() {
	e.waitNanos.Store(0)
	e.ghostWaitNs.Store(0)
	e.reduceWaitNs.Store(0)
	e.sent.Store(0)
	e.received.Store(0)
	e.bytesSent.Store(0)
	e.retries.Store(0)
	e.timeouts.Store(0)
}

// AllReduceMin folds vals element-wise with min across all ranks and
// returns the global result on every rank. Implemented as a gather to
// rank 0 and a broadcast, with a deterministic (rank-ascending) fold
// order; min is exact, so the order does not affect the value. On a
// fault-tolerant cluster every constituent receive runs under the
// deadline/retry protocol, so a lost contribution is re-requested and a
// dead rank surfaces as ErrExchangeTimeout instead of a deadlock.
func (e *Endpoint) AllReduceMin(vals []float64) ([]float64, error) {
	n := e.c.size
	if n == 1 {
		out := make([]float64, len(vals))
		copy(out, vals)
		return out, nil
	}
	if e.rank == 0 {
		acc := make([]float64, len(vals))
		copy(acc, vals)
		for from := 1; from < n; from++ {
			theirs, err := e.RecvDeadline(from, TagReduce)
			if err != nil {
				return nil, err
			}
			if len(theirs) != len(acc) {
				panic("comm: AllReduceMin length mismatch")
			}
			for i, v := range theirs {
				if v < acc[i] {
					acc[i] = v
				}
			}
		}
		for to := 1; to < n; to++ {
			e.Send(to, TagReduce, acc)
		}
		return acc, nil
	}
	e.Send(0, TagReduce, vals)
	return e.RecvDeadline(0, TagReduce)
}

// AllReduceMinTree is AllReduceMin over a binomial tree: the reduce walks
// up the tree (each rank folds its subtree's minima, then sends one
// message to its parent) and the broadcast mirrors it back down, so the
// critical path is 2·⌈log2(n)⌉ sequential hops instead of the linear
// gather's n−1 receives serialized on rank 0 — and rank 0 handles
// O(log n) messages per step instead of O(n). Min is exact, so the
// different fold order produces bitwise-identical results to
// AllReduceMin, which the tests and luleshverify assert.
//
// Tree edges reuse TagReduce: each (pair, direction) carries at most one
// message per reduction, so the per-stream sequencing of the
// fault-tolerant fabric applies unchanged and every constituent receive
// runs under the deadline/retry protocol.
func (e *Endpoint) AllReduceMinTree(vals []float64) ([]float64, error) {
	n := e.c.size
	acc := make([]float64, len(vals))
	copy(acc, vals)
	if n == 1 {
		return acc, nil
	}
	// Reduce phase: fold the children (ranks r+1, r+2, r+4, ... below the
	// lowest set bit), then hand the subtree minimum to the parent r−lsb.
	// Rank 0 has no parent and ends holding the global minimum.
	for ofs := 1; ofs < n; ofs <<= 1 {
		if e.rank&ofs != 0 {
			e.Send(e.rank-ofs, TagReduce, acc)
			break
		}
		if peer := e.rank + ofs; peer < n {
			theirs, err := e.RecvDeadline(peer, TagReduce)
			if err != nil {
				return nil, err
			}
			if len(theirs) != len(acc) {
				panic("comm: AllReduceMinTree length mismatch")
			}
			for i, v := range theirs {
				if v < acc[i] {
					acc[i] = v
				}
			}
		}
	}
	// Broadcast phase: the mirror image. Each rank receives the result
	// from its parent, then forwards it to its children in descending
	// offset order; rank 0 starts from the top with a virtual lsb.
	lsb := e.rank & -e.rank
	if e.rank == 0 {
		lsb = 1
		for lsb < n {
			lsb <<= 1
		}
	} else {
		res, err := e.RecvDeadline(e.rank-lsb, TagReduce)
		if err != nil {
			return nil, err
		}
		if len(res) != len(acc) {
			panic("comm: AllReduceMinTree length mismatch")
		}
		copy(acc, res)
	}
	for ofs := lsb >> 1; ofs >= 1; ofs >>= 1 {
		if peer := e.rank + ofs; peer < n {
			e.Send(peer, TagReduce, acc)
		}
	}
	return acc, nil
}
