package comm

import (
	"fmt"
	"time"
)

// Remote mode: the fabric spans OS processes. Exactly one rank lives in
// this process; every other rank is reached through a RemoteLink (the TCP
// fabric of internal/wire). The endpoint protocol — per-stream sequence
// numbers, mailbox reconciliation, deadline/retry/backoff recovery — is
// byte-for-byte the same code that runs in-process, so everything the
// fault-tolerance tests prove about it holds over real sockets too.

// RemoteLink carries stamped messages to out-of-process peers. It is the
// seam between the endpoint protocol and a physical transport: SendData
// must fully serialize data before returning (the caller reuses the slice
// for later sends), SendCtrl carries a resend request, and PeerDead
// reports a failed peer connection (nil = alive). All three are called
// from the local rank's goroutine; deliveries travel the other way via
// Cluster.InjectData / Cluster.InjectCtrl, called from the link's reader
// goroutines.
type RemoteLink interface {
	SendData(to int, tag Tag, seq uint64, delay time.Duration, data []float64) error
	SendCtrl(to int, tag Tag, seq uint64) error
	PeerDead(peer int) error
}

// NewRemoteCluster creates rank local's view of a size-rank fabric whose
// peers live in other processes, reached through link. A remote cluster
// always runs the fault-tolerant protocol (opt.Transport nil selects
// Reliable): real networks lose connections, and the deadline/retry
// machinery doubles as the failure detector. opt.Latency is ignored — a
// real interconnect brings its own.
//
// Only Endpoint(local) may be requested. Incoming traffic is injected by
// the link via InjectData / InjectCtrl.
func NewRemoteCluster(local, size int, opt Options, link RemoteLink) *Cluster {
	if local < 0 || local >= size {
		panic(fmt.Sprintf("comm: local rank %d out of [0,%d)", local, size))
	}
	if link == nil {
		panic("comm: remote cluster needs a RemoteLink")
	}
	c := &Cluster{size: size, local: local, remote: link,
		pipes: make([][]chan message, size)}
	// Only the local rank's incoming pipes exist in this process.
	for from := 0; from < size; from++ {
		if from == local {
			continue
		}
		c.pipes[from] = make([]chan message, size)
		c.pipes[from][local] = make(chan message, pipeCap)
	}
	c.tr = opt.Transport
	if c.tr == nil {
		c.tr = Reliable{}
	}
	c.deadline = opt.ExchangeDeadline
	if c.deadline <= 0 {
		c.deadline = DefaultExchangeDeadline
	}
	c.retryLimit = opt.RetryLimit
	if c.retryLimit <= 0 {
		c.retryLimit = DefaultRetryLimit
	}
	c.ctrl = make([]chan ctrlMsg, size)
	c.ctrl[local] = make(chan ctrlMsg, 8*size)
	return c
}

// LocalRank reports the in-process rank of a remote cluster (-1 for an
// in-process cluster, where every rank is local).
func (c *Cluster) LocalRank() int {
	if c.remote == nil {
		return -1
	}
	return c.local
}

// InjectData delivers a data message that arrived over the remote link
// into the local rank's receive path, as if the peer's endpoint had sent
// it in-process. delay is the residual injected delivery delay (fault
// plans compose over the wire: the injector runs on the sender, the sleep
// happens here). The report is false when the local pipe was full and the
// message was dropped — the resend protocol recovers it.
func (c *Cluster) InjectData(from int, tag Tag, seq uint64, delay time.Duration, data []float64) bool {
	if c.remote == nil {
		panic("comm: InjectData on an in-process cluster")
	}
	m := message{tag: tag, seq: seq, data: data}
	if delay > 0 {
		m.ready = time.Now().Add(delay)
	}
	select {
	case c.pipes[from][c.local] <- m:
		return true
	default:
		c.counters.overflows.Add(1)
		return false
	}
}

// InjectCtrl delivers a resend request that arrived over the remote link.
// A full control channel just drops it: the requester's next backoff
// round asks again.
func (c *Cluster) InjectCtrl(from int, tag Tag, seq uint64) bool {
	if c.remote == nil {
		panic("comm: InjectCtrl on an in-process cluster")
	}
	select {
	case c.ctrl[c.local] <- ctrlMsg{from: from, tag: tag, seq: seq}:
		return true
	default:
		return false
	}
}

// peerDead reports the failure of a remote peer's connection, nil when
// the peer is reachable (always nil in-process: goroutine ranks have no
// connection to lose).
func (c *Cluster) peerDead(peer int) error {
	if c.remote == nil {
		return nil
	}
	return c.remote.PeerDead(peer)
}
