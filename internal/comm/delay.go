package comm

import "time"

// Delay is a deterministic wire-latency injection transport: every
// message it carries is delivered with an extra fixed one-way Link
// latency, on top of whatever the fabric itself adds. Unlike the
// cluster-level Options.Latency (which only the in-process channel fabric
// honours), Delay rides the Transport seam, so the same knob works on
// both fabrics: in-process the delay lands on the message's ready
// timestamp, over the wire it travels in the frame header's delay field
// and is slept on the receiving side (Cluster.InjectData). That makes
// overlap experiments comparable across fabrics — the synchronous
// schedule pays Link as blocked time at every phase boundary while an
// overlapped schedule computes through it — with none of the fault
// injector's randomness.
//
// Delay composes: Next, when non-nil, runs first (e.g. a FaultInjector),
// and the link latency is added to every delivery it emits. Crash
// schedules and injected-fault statistics pass through (Crasher, Unwrap).
type Delay struct {
	Link time.Duration
	Next Transport // nil = deliver exactly once (Reliable)
}

// NewDelay builds a latency-injecting transport around next (nil = the
// reliable identity transport).
func NewDelay(link time.Duration, next Transport) *Delay {
	return &Delay{Link: link, Next: next}
}

// Transmit implements Transport: forward through Next (identity when
// nil), then add the link latency to every resulting delivery. The
// returned messages alias Next's — Delay itself never retains m.Data.
func (d *Delay) Transmit(m Message) []Message {
	var out []Message
	if d.Next == nil {
		out = []Message{m}
	} else {
		out = d.Next.Transmit(m)
	}
	for i := range out {
		out[i].Delay += d.Link
	}
	return out
}

// CrashNow implements Crasher by delegation, so a wrapped FaultInjector's
// scheduled rank crash still fires.
func (d *Delay) CrashNow(rank, epoch int) bool {
	if cr, ok := d.Next.(Crasher); ok {
		return cr.CrashNow(rank, epoch)
	}
	return false
}

// Unwrap exposes the wrapped transport, letting the fabric-stats walk
// find an injector behind the delay layer.
func (d *Delay) Unwrap() Transport { return d.Next }
