package comm

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("drop=0.05,delay=0.02:500us,dup=0.01,reorder=0.03,crash=1@20", 42)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.Drop != 0.05 || p.Delay != 0.02 ||
		p.DelayBy != 500*time.Microsecond || p.Duplicate != 0.01 ||
		p.Reorder != 0.03 || p.CrashRank != 1 || p.CrashStep != 20 {
		t.Fatalf("parsed %+v", p)
	}
	if !p.Active() {
		t.Fatal("plan with faults should be active")
	}
	// Delay without an explicit duration gets the default.
	p, err = ParseFaultPlan("delay=0.5", 1)
	if err != nil || p.DelayBy != 200*time.Microsecond {
		t.Fatalf("default delay: %+v, %v", p, err)
	}
	// Empty spec parses to an inactive plan.
	p, err = ParseFaultPlan("", 1)
	if err != nil || p.Active() {
		t.Fatalf("empty spec: %+v, %v", p, err)
	}
	for _, bad := range []string{
		"drop", "drop=2", "drop=-0.1", "drop=x", "delay=0.1:oops",
		"crash=1", "crash=x@2", "crash=1@0", "wibble=1",
	} {
		if _, err := ParseFaultPlan(bad, 0); err == nil {
			t.Fatalf("spec %q should fail to parse", bad)
		}
	}
}

// fate records the injector's decision for one message as a comparable value.
func fate(in Message, out []Message) string {
	switch {
	case len(out) == 0:
		return "drop-or-hold"
	case len(out) == 1 && out[0].Seq == in.Seq && out[0].Delay == 0:
		return "deliver"
	case len(out) == 1 && out[0].Delay > 0:
		return "deliver-delayed"
	default:
		return "multi"
	}
}

func TestFaultInjectorDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 7, Drop: 0.2, Delay: 0.1, DelayBy: time.Millisecond,
		Duplicate: 0.1, Reorder: 0.2}
	run := func() []string {
		inj := NewFaultInjector(plan, 3)
		var fates []string
		for i := 0; i < 200; i++ {
			m := Message{From: i % 3, To: (i + 1) % 3, Tag: TagForceX, Seq: uint64(i)}
			fates = append(fates, fate(m, inj.Transmit(m)))
		}
		return fates
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("message %d: same seed gave %q then %q", i, a[i], b[i])
		}
	}
	// A different seed must give a different schedule (overwhelmingly).
	plan.Seed = 8
	c := run()
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical fault schedule")
	}
}

func TestFaultInjectorStatsAndReorder(t *testing.T) {
	// Reorder=1: the first message on a pair is held, the second delivery
	// carries it behind itself.
	inj := NewFaultInjector(FaultPlan{Seed: 1, Reorder: 1}, 2)
	first := inj.Transmit(Message{From: 0, To: 1, Tag: TagForceX, Seq: 0})
	if len(first) != 0 {
		t.Fatalf("first message should be held, got %d deliveries", len(first))
	}
	second := inj.Transmit(Message{From: 0, To: 1, Tag: TagForceX, Seq: 1})
	if len(second) != 2 || second[0].Seq != 1 || second[1].Seq != 0 {
		t.Fatalf("reorder delivery = %+v", second)
	}
	if st := inj.Stats(); st.Reordered != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Reset clears a pending hold so it cannot leak into a restarted run.
	inj.Transmit(Message{From: 0, To: 1, Tag: TagForceX, Seq: 2}) // held again
	inj.Reset()
	out := inj.Transmit(Message{From: 0, To: 1, Tag: TagForceX, Seq: 3})
	for _, m := range out {
		if m.Seq == 2 {
			t.Fatal("Reset did not clear the held message")
		}
	}
}

func TestCrashOnce(t *testing.T) {
	inj := NewFaultInjector(FaultPlan{Seed: 1, CrashStep: 5, CrashRank: 1}, 2)
	if inj.CrashNow(0, 5) {
		t.Fatal("wrong rank crashed")
	}
	if inj.CrashNow(1, 4) {
		t.Fatal("crashed before the planned step")
	}
	if !inj.CrashNow(1, 5) {
		t.Fatal("planned crash did not fire")
	}
	if inj.CrashNow(1, 6) {
		t.Fatal("crash fired twice")
	}
	inj.Reset()
	if inj.CrashNow(1, 7) {
		t.Fatal("Reset revived a consumed crash")
	}
}

// dropFirst is a Transport that drops the first n messages it sees and
// delivers everything after reliably.
type dropFirst struct {
	n    int64
	seen atomic.Int64
}

func (d *dropFirst) Transmit(m Message) []Message {
	if d.seen.Add(1) <= d.n {
		return nil
	}
	return []Message{m}
}

func TestRecvDeadlineRecoversDrop(t *testing.T) {
	c := NewClusterOptions(2, Options{
		Transport:        &dropFirst{n: 1},
		ExchangeDeadline: 5 * time.Millisecond,
		RetryLimit:       4,
	})
	a, b := c.Endpoint(0), c.Endpoint(1)
	done := make(chan struct{})
	go func() {
		a.Send(1, TagForceX, []float64{42})
		// The send was dropped; keep answering resend requests until the
		// receiver confirms delivery.
		for {
			select {
			case <-done:
				return
			default:
				a.Poll()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	got, err := b.RecvDeadline(0, TagForceX)
	close(done)
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("RecvDeadline = %v, %v", got, err)
	}
	fs := c.FabricStats()
	if fs.Retries < 1 || fs.ResendsServed < 1 {
		t.Fatalf("recovery not exercised: %+v", fs)
	}
	if s := b.StatsSnapshot(); s.Retries < 1 {
		t.Fatalf("endpoint retry counter not bumped: %+v", s)
	}
}

func TestRecvDeadlineTimesOut(t *testing.T) {
	c := NewClusterOptions(2, Options{
		ExchangeDeadline: 2 * time.Millisecond,
		RetryLimit:       2,
	})
	b := c.Endpoint(1)
	t0 := time.Now()
	_, err := b.RecvDeadline(0, TagForceX)
	if !errors.Is(err, ErrExchangeTimeout) {
		t.Fatalf("want ErrExchangeTimeout, got %v", err)
	}
	// Deadline 2ms with backoff 2+4+8 = at least 14ms before giving up.
	if elapsed := time.Since(t0); elapsed < 10*time.Millisecond {
		t.Fatalf("gave up after only %v — backoff not applied", elapsed)
	}
	if fs := c.FabricStats(); fs.Timeouts != 1 || fs.Retries != 2 {
		t.Fatalf("fabric stats %+v", fs)
	}
}

func TestDuplicatesFiltered(t *testing.T) {
	inj := NewFaultInjector(FaultPlan{Seed: 3, Duplicate: 1}, 2)
	c := NewClusterOptions(2, Options{
		Transport:        inj,
		ExchangeDeadline: 10 * time.Millisecond,
		RetryLimit:       2,
	})
	a, b := c.Endpoint(0), c.Endpoint(1)
	for i := 0; i < 5; i++ {
		a.Send(1, TagForceX, []float64{float64(i)})
	}
	for i := 0; i < 5; i++ {
		got, err := b.RecvDeadline(0, TagForceX)
		if err != nil || got[0] != float64(i) {
			t.Fatalf("message %d: %v, %v", i, got, err)
		}
	}
	fs := c.FabricStats()
	if fs.Injected.Duplicated != 5 {
		t.Fatalf("expected 5 duplications, got %+v", fs.Injected)
	}
	// The duplicate of the final message stays in the pipe (the receiver
	// stops pulling once it has its 5 payloads), so 4 are filtered.
	if fs.DuplicatesDropped < 4 {
		t.Fatalf("sequence filter dropped only %d duplicates", fs.DuplicatesDropped)
	}
}

func TestReorderRestored(t *testing.T) {
	inj := NewFaultInjector(FaultPlan{Seed: 3, Reorder: 1}, 2)
	c := NewClusterOptions(2, Options{
		Transport:        inj,
		ExchangeDeadline: 10 * time.Millisecond,
		RetryLimit:       2,
	})
	a, b := c.Endpoint(0), c.Endpoint(1)
	for i := 0; i < 6; i++ {
		a.Send(1, TagForceX, []float64{float64(i)})
	}
	for i := 0; i < 6; i++ {
		got, err := b.RecvDeadline(0, TagForceX)
		if err != nil || got[0] != float64(i) {
			t.Fatalf("message %d delivered out of order: %v, %v", i, got, err)
		}
	}
	if st := inj.Stats(); st.Reordered == 0 {
		t.Fatal("no reorders committed")
	}
}

func TestAllReduceMinUnderDrops(t *testing.T) {
	const n, rounds = 3, 30
	inj := NewFaultInjector(FaultPlan{Seed: 99, Drop: 0.2}, n)
	c := NewClusterOptions(n, Options{
		Transport:        inj,
		ExchangeDeadline: 5 * time.Millisecond,
		RetryLimit:       6,
	})
	var wg sync.WaitGroup
	var finished atomic.Int64
	errc := make(chan error, n)
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := c.Endpoint(r)
			for round := 0; round < rounds; round++ {
				got, err := e.AllReduceMin([]float64{float64(round*100 + r)})
				if err != nil {
					errc <- err
					break
				}
				if got[0] != float64(round*100) {
					errc <- errors.New("wrong minimum under drops")
					break
				}
			}
			// Linger answering resend requests until every rank is done,
			// so a dropped final broadcast can still be recovered.
			finished.Add(1)
			for finished.Load() < n {
				e.Poll()
				time.Sleep(100 * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	fs := c.FabricStats()
	if fs.Injected.Dropped == 0 {
		t.Fatal("fault plan committed no drops — test proves nothing")
	}
	if fs.Retries == 0 {
		t.Fatal("drops happened but no retries were issued")
	}
	if fs.Timeouts != 0 {
		t.Fatalf("reduction should have recovered, saw %d timeouts", fs.Timeouts)
	}
}
