package comm

import "time"

// Message is one in-flight payload as a Transport sees it: the sender and
// receiver ranks, the exchange tag, the per-(pair, tag) stream sequence
// number stamped by the sending endpoint, the payload, and the extra
// delivery delay injected so far. Transports receive messages on the
// sender's goroutine and return the copies that actually enter the fabric.
type Message struct {
	From, To int
	Tag      Tag
	Seq      uint64
	Data     []float64
	Delay    time.Duration // extra delivery delay on top of the fabric latency
}

// Transport decides the fate of every message handed to the fabric when
// the cluster runs in fault-tolerant mode. Transmit is called once per
// send, on the sender's goroutine, and returns the deliveries to enqueue
// in order: an empty slice drops the message, two identical entries
// duplicate it, a held-back entry appended behind a later message reorders
// the stream. Implementations may keep per-(From, To) state without
// locking — each rank sends from a single goroutine — but state shared
// across sender ranks must be synchronized.
//
// A Transport must not retain m.Data after Transmit returns: on a remote
// cluster the sender reuses the payload buffer for the stream's next
// message. An implementation that holds a message back (reordering) must
// copy Data into the held entry, as FaultInjector does.
//
// The receiving endpoints tolerate whatever a Transport does: sequence
// numbers filter duplicates and restore order, and the deadline/resend
// protocol (Endpoint.RecvDeadline) recovers dropped messages. On a remote
// cluster the deliveries are serialized onto the peer's TCP connection
// instead of enqueued on a channel; drop/delay/dup/reorder injection
// composes with the wire path unchanged.
type Transport interface {
	Transmit(m Message) []Message
}

// Reliable is the identity transport: every message is delivered exactly
// once with no extra delay. It backs the fault-tolerant code path when a
// deadline is configured without fault injection; clusters built without
// Options skip the Transport layer entirely (the zero-cost default).
type Reliable struct{}

// Transmit delivers m unchanged.
func (Reliable) Transmit(m Message) []Message { return []Message{m} }

// Crasher is implemented by transports that schedule whole-rank failures.
// The distributed driver asks CrashNow at every comm epoch (timestep); a
// true return makes the rank abandon the protocol immediately, as a real
// node loss would, leaving its peers to detect the failure by exchange
// deadline.
type Crasher interface {
	CrashNow(rank, epoch int) bool
}
