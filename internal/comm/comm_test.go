package comm

import (
	"sync"
	"testing"
	"time"
)

func TestClusterSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCluster(0) should panic")
		}
	}()
	NewCluster(0)
}

func TestEndpointRankValidation(t *testing.T) {
	c := NewCluster(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range endpoint should panic")
		}
	}()
	c.Endpoint(2)
}

func TestSendRecvRoundtrip(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Endpoint(0), c.Endpoint(1)
	want := []float64{1, 2, 3}
	go a.Send(1, TagForceX, want)
	got := b.Recv(0, TagForceX)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Endpoint(0), c.Endpoint(1)
	buf := []float64{1, 2}
	a.Send(1, TagForceX, buf)
	buf[0] = 99 // mutate after send: receiver must see the original
	got := b.Recv(0, TagForceX)
	if got[0] != 1 {
		t.Fatalf("payload aliased: got %v", got)
	}
}

func TestMessagesOrderedPerPair(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Endpoint(0), c.Endpoint(1)
	for i := 0; i < 10; i++ {
		a.Send(1, TagForceX, []float64{float64(i)})
	}
	for i := 0; i < 10; i++ {
		if got := b.Recv(0, TagForceX); got[0] != float64(i) {
			t.Fatalf("message %d out of order: %v", i, got)
		}
	}
}

func TestTagMismatchPanics(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Endpoint(0), c.Endpoint(1)
	a.Send(1, TagForceX, []float64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("tag mismatch should panic")
		}
	}()
	b.Recv(0, TagDelvXi)
}

func TestSendToSelfPanics(t *testing.T) {
	c := NewCluster(2)
	a := c.Endpoint(0)
	defer func() {
		if recover() == nil {
			t.Fatal("send to self should panic")
		}
	}()
	a.Send(0, TagForceX, nil)
}

func TestTryRecv(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Endpoint(0), c.Endpoint(1)
	if _, ok := b.TryRecv(0, TagForceX); ok {
		t.Fatal("TryRecv on empty pipe returned a message")
	}
	a.Send(1, TagForceX, []float64{7})
	got, ok := b.TryRecv(0, TagForceX)
	if !ok || got[0] != 7 {
		t.Fatalf("TryRecv = %v, %v", got, ok)
	}
}

func TestRecvWaitAccounting(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Endpoint(0), c.Endpoint(1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		a.Send(1, TagForceX, []float64{1})
	}()
	b.Recv(0, TagForceX)
	if w := b.StatsSnapshot().Wait; w < 10*time.Millisecond {
		t.Fatalf("blocked receive accounted only %v wait", w)
	}
	// An eager receive must not accumulate wait.
	a.Send(1, TagForceX, []float64{2})
	time.Sleep(time.Millisecond)
	before := b.StatsSnapshot().Wait
	b.Recv(0, TagForceX)
	if after := b.StatsSnapshot().Wait; after != before {
		t.Fatalf("eager receive accumulated wait: %v -> %v", before, after)
	}
}

func TestStatsCounts(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Endpoint(0), c.Endpoint(1)
	a.Send(1, TagForceX, make([]float64, 5))
	b.Recv(0, TagForceX)
	sa, sb := a.StatsSnapshot(), b.StatsSnapshot()
	if sa.Sent != 1 || sa.BytesSent != 40 || sb.Received != 1 {
		t.Fatalf("stats: a=%+v b=%+v", sa, sb)
	}
	a.ResetStats()
	if s := a.StatsSnapshot(); s.Sent != 0 || s.BytesSent != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
}

func TestAllReduceMinSingleRank(t *testing.T) {
	c := NewCluster(1)
	e := c.Endpoint(0)
	in := []float64{3, 1}
	out, err := e.AllReduceMin(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 || out[1] != 1 {
		t.Fatalf("got %v", out)
	}
	out[0] = 99
	if in[0] != 3 {
		t.Fatal("AllReduceMin must not alias its input")
	}
}

func TestAllReduceMinAcrossRanks(t *testing.T) {
	const n = 5
	c := NewCluster(n)
	results := make([][]float64, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := c.Endpoint(r)
			vals := []float64{float64(10 + r), float64(10 - r), 0}
			results[r], _ = e.AllReduceMin(vals)
		}()
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		got := results[r]
		if got[0] != 10 || got[1] != float64(10-(n-1)) || got[2] != 0 {
			t.Fatalf("rank %d reduced to %v", r, got)
		}
	}
}

func TestAllReduceMinRepeatedRounds(t *testing.T) {
	// Repeated reductions must not cross-talk between rounds.
	const n = 3
	c := NewCluster(n)
	var wg sync.WaitGroup
	errc := make(chan string, n)
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := c.Endpoint(r)
			for round := 0; round < 50; round++ {
				got, err := e.AllReduceMin([]float64{float64(round*10 + r)})
				if err != nil {
					errc <- err.Error()
					return
				}
				if got[0] != float64(round*10) {
					errc <- "round mixup"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}

func TestTagStrings(t *testing.T) {
	for _, tag := range []Tag{TagNodalMass, TagForceX, TagForceY, TagForceZ,
		TagDelvXi, TagDelvEta, TagDelvZeta, TagReduce, Tag(99)} {
		if tag.String() == "" {
			t.Fatalf("empty string for tag %d", tag)
		}
	}
}

func TestAccessors(t *testing.T) {
	c := NewClusterLatency(3, 5*time.Millisecond)
	if c.Size() != 3 || c.Latency() != 5*time.Millisecond {
		t.Fatalf("cluster accessors: size=%d latency=%v", c.Size(), c.Latency())
	}
	e := c.Endpoint(2)
	if e.Rank() != 2 || e.Size() != 3 {
		t.Fatalf("endpoint accessors: rank=%d size=%d", e.Rank(), e.Size())
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	c := NewClusterLatency(2, 10*time.Millisecond)
	a, b := c.Endpoint(0), c.Endpoint(1)
	t0 := time.Now()
	a.Send(1, TagForceX, []float64{1})
	got := b.Recv(0, TagForceX)
	elapsed := time.Since(t0)
	if got[0] != 1 {
		t.Fatalf("payload %v", got)
	}
	if elapsed < 8*time.Millisecond {
		t.Fatalf("latency not applied: delivered after %v", elapsed)
	}
	if w := b.StatsSnapshot().Wait; w < 5*time.Millisecond {
		t.Fatalf("latency wait not accounted: %v", w)
	}
}

func TestTryRecvHonorsLatency(t *testing.T) {
	c := NewClusterLatency(2, 20*time.Millisecond)
	a, b := c.Endpoint(0), c.Endpoint(1)
	a.Send(1, TagForceX, []float64{7})
	if _, ok := b.TryRecv(0, TagForceX); ok {
		t.Fatal("TryRecv delivered a message before its latency elapsed")
	}
	time.Sleep(25 * time.Millisecond)
	got, ok := b.TryRecv(0, TagForceX)
	if !ok || got[0] != 7 {
		t.Fatalf("TryRecv after latency: %v %v", got, ok)
	}
}

func TestHeadBufferThenBlockingRecv(t *testing.T) {
	// A message parked in the head buffer by TryRecv must be delivered by
	// a subsequent blocking Recv.
	c := NewClusterLatency(2, 15*time.Millisecond)
	a, b := c.Endpoint(0), c.Endpoint(1)
	a.Send(1, TagForceX, []float64{3})
	if _, ok := b.TryRecv(0, TagForceX); ok {
		t.Fatal("premature delivery")
	}
	got := b.Recv(0, TagForceX) // must find the head and wait out latency
	if got[0] != 3 {
		t.Fatalf("payload %v", got)
	}
}
