package comm

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestClusterSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCluster(0) should panic")
		}
	}()
	NewCluster(0)
}

func TestEndpointRankValidation(t *testing.T) {
	c := NewCluster(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range endpoint should panic")
		}
	}()
	c.Endpoint(2)
}

func TestSendRecvRoundtrip(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Endpoint(0), c.Endpoint(1)
	want := []float64{1, 2, 3}
	go a.Send(1, TagForceX, want)
	got := b.Recv(0, TagForceX)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Endpoint(0), c.Endpoint(1)
	buf := []float64{1, 2}
	a.Send(1, TagForceX, buf)
	buf[0] = 99 // mutate after send: receiver must see the original
	got := b.Recv(0, TagForceX)
	if got[0] != 1 {
		t.Fatalf("payload aliased: got %v", got)
	}
}

func TestMessagesOrderedPerPair(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Endpoint(0), c.Endpoint(1)
	for i := 0; i < 10; i++ {
		a.Send(1, TagForceX, []float64{float64(i)})
	}
	for i := 0; i < 10; i++ {
		if got := b.Recv(0, TagForceX); got[0] != float64(i) {
			t.Fatalf("message %d out of order: %v", i, got)
		}
	}
}

func TestTagMismatchPanics(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Endpoint(0), c.Endpoint(1)
	a.Send(1, TagForceX, []float64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("tag mismatch should panic")
		}
	}()
	b.Recv(0, TagDelvXi)
}

func TestSendToSelfPanics(t *testing.T) {
	c := NewCluster(2)
	a := c.Endpoint(0)
	defer func() {
		if recover() == nil {
			t.Fatal("send to self should panic")
		}
	}()
	a.Send(0, TagForceX, nil)
}

func TestTryRecv(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Endpoint(0), c.Endpoint(1)
	if _, ok := b.TryRecv(0, TagForceX); ok {
		t.Fatal("TryRecv on empty pipe returned a message")
	}
	a.Send(1, TagForceX, []float64{7})
	got, ok := b.TryRecv(0, TagForceX)
	if !ok || got[0] != 7 {
		t.Fatalf("TryRecv = %v, %v", got, ok)
	}
}

func TestRecvWaitAccounting(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Endpoint(0), c.Endpoint(1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		a.Send(1, TagForceX, []float64{1})
	}()
	b.Recv(0, TagForceX)
	if w := b.StatsSnapshot().Wait; w < 10*time.Millisecond {
		t.Fatalf("blocked receive accounted only %v wait", w)
	}
	// An eager receive must not accumulate wait.
	a.Send(1, TagForceX, []float64{2})
	time.Sleep(time.Millisecond)
	before := b.StatsSnapshot().Wait
	b.Recv(0, TagForceX)
	if after := b.StatsSnapshot().Wait; after != before {
		t.Fatalf("eager receive accumulated wait: %v -> %v", before, after)
	}
}

func TestStatsCounts(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Endpoint(0), c.Endpoint(1)
	a.Send(1, TagForceX, make([]float64, 5))
	b.Recv(0, TagForceX)
	sa, sb := a.StatsSnapshot(), b.StatsSnapshot()
	if sa.Sent != 1 || sa.BytesSent != 40 || sb.Received != 1 {
		t.Fatalf("stats: a=%+v b=%+v", sa, sb)
	}
	a.ResetStats()
	if s := a.StatsSnapshot(); s.Sent != 0 || s.BytesSent != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
}

func TestAllReduceMinSingleRank(t *testing.T) {
	c := NewCluster(1)
	e := c.Endpoint(0)
	in := []float64{3, 1}
	out, err := e.AllReduceMin(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 || out[1] != 1 {
		t.Fatalf("got %v", out)
	}
	out[0] = 99
	if in[0] != 3 {
		t.Fatal("AllReduceMin must not alias its input")
	}
}

func TestAllReduceMinAcrossRanks(t *testing.T) {
	const n = 5
	c := NewCluster(n)
	results := make([][]float64, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := c.Endpoint(r)
			vals := []float64{float64(10 + r), float64(10 - r), 0}
			results[r], _ = e.AllReduceMin(vals)
		}()
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		got := results[r]
		if got[0] != 10 || got[1] != float64(10-(n-1)) || got[2] != 0 {
			t.Fatalf("rank %d reduced to %v", r, got)
		}
	}
}

func TestAllReduceMinRepeatedRounds(t *testing.T) {
	// Repeated reductions must not cross-talk between rounds.
	const n = 3
	c := NewCluster(n)
	var wg sync.WaitGroup
	errc := make(chan string, n)
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := c.Endpoint(r)
			for round := 0; round < 50; round++ {
				got, err := e.AllReduceMin([]float64{float64(round*10 + r)})
				if err != nil {
					errc <- err.Error()
					return
				}
				if got[0] != float64(round*10) {
					errc <- "round mixup"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}

// runAllReduce drives one reduction round on every rank of a fresh
// n-rank cluster and returns each rank's result.
func runAllReduce(t *testing.T, n int, tree bool, vals func(r int) []float64) [][]float64 {
	t.Helper()
	c := NewCluster(n)
	results := make([][]float64, n)
	var wg sync.WaitGroup
	errc := make(chan error, n)
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := c.Endpoint(r)
			var err error
			if tree {
				results[r], err = e.AllReduceMinTree(vals(r))
			} else {
				results[r], err = e.AllReduceMin(vals(r))
			}
			if err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	return results
}

func TestAllReduceMinTreeMatchesLinear(t *testing.T) {
	// The binomial tree must produce bitwise-identical results to the
	// linear gather at every fabric size, power of two or not, including
	// adversarial values (negatives, zero, ±Inf, denormals).
	vals := func(r int) []float64 {
		return []float64{
			float64(10 + r),
			-float64(r) * 1e-310, // denormal magnitudes
			math.Inf(1),
			float64(7 - r),
		}
	}
	for n := 1; n <= 9; n++ {
		linear := runAllReduce(t, n, false, vals)
		tree := runAllReduce(t, n, true, vals)
		for r := 0; r < n; r++ {
			for i := range linear[r] {
				if math.Float64bits(linear[r][i]) != math.Float64bits(tree[r][i]) {
					t.Fatalf("n=%d rank %d elem %d: linear %v tree %v",
						n, r, i, linear[r], tree[r])
				}
			}
			if fmt.Sprint(tree[r]) != fmt.Sprint(tree[0]) {
				t.Fatalf("n=%d rank %d disagrees: %v vs %v", n, r, tree[r], tree[0])
			}
		}
	}
}

func TestAllReduceMinTreeRootMessageCount(t *testing.T) {
	// The point of the tree: rank 0 handles O(log n) messages per
	// reduction instead of O(n). At n=8 the linear gather costs rank 0
	// seven receives and seven sends; the binomial tree costs three each.
	const n = 8
	count := func(tree bool) (sent, received int64) {
		c := NewCluster(n)
		eps := make([]*Endpoint, n)
		for r := range eps {
			eps[r] = c.Endpoint(r)
		}
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				if tree {
					eps[r].AllReduceMinTree([]float64{float64(r)})
				} else {
					eps[r].AllReduceMin([]float64{float64(r)})
				}
			}()
		}
		wg.Wait()
		s := eps[0].StatsSnapshot()
		return s.Sent, s.Received
	}
	ls, lr := count(false)
	ts, tr := count(true)
	if ls != n-1 || lr != n-1 {
		t.Fatalf("linear root traffic: sent=%d received=%d, want %d each", ls, lr, n-1)
	}
	if ts != 3 || tr != 3 {
		t.Fatalf("tree root traffic: sent=%d received=%d, want log2(%d)=3 each", ts, tr, n)
	}
}

func TestAllReduceMinTreeRepeatedRounds(t *testing.T) {
	// Back-to-back tree reductions reuse the same TagReduce streams in
	// both directions; rounds must not cross-talk.
	const n = 6
	c := NewCluster(n)
	var wg sync.WaitGroup
	errc := make(chan string, n)
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := c.Endpoint(r)
			for round := 0; round < 50; round++ {
				got, err := e.AllReduceMinTree([]float64{float64(round*10 + r)})
				if err != nil {
					errc <- err.Error()
					return
				}
				if got[0] != float64(round*10) {
					errc <- "round mixup"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}

func TestDelayTransport(t *testing.T) {
	// The delay transport stamps every delivery with the link latency and
	// composes with an inner transport (here a duplicate-once model whose
	// copies must each carry the delay).
	d := NewDelay(2*time.Millisecond, nil)
	out := d.Transmit(Message{From: 0, To: 1, Tag: TagForceX})
	if len(out) != 1 || out[0].Delay != 2*time.Millisecond {
		t.Fatalf("identity transmit: %+v", out)
	}
	if d.Unwrap() != nil {
		t.Fatal("bare delay should unwrap to nil")
	}
	if d.CrashNow(0, 1) {
		t.Fatal("bare delay must not crash anyone")
	}

	inner := NewFaultInjector(FaultPlan{Seed: 1, Delay: 1, DelayBy: time.Millisecond}, 2)
	wrapped := NewDelay(2*time.Millisecond, inner)
	out = wrapped.Transmit(Message{From: 0, To: 1, Tag: TagForceX})
	for _, m := range out {
		if m.Delay < 2*time.Millisecond {
			t.Fatalf("inner delivery missing link delay: %+v", m)
		}
	}
	if wrapped.Unwrap() != Transport(inner) {
		t.Fatal("Unwrap must expose the inner transport")
	}
}

func TestFabricStatsUnwrapsDelay(t *testing.T) {
	// FabricStats must find a fault injector hidden behind a Delay layer.
	inner := NewFaultInjector(FaultPlan{Seed: 3, Drop: 1}, 2)
	c := NewClusterOptions(2, Options{
		Transport:        NewDelay(time.Microsecond, inner),
		ExchangeDeadline: time.Millisecond,
		RetryLimit:       1,
	})
	c.Endpoint(0).Send(1, TagForceX, []float64{1})
	if got := c.FabricStats().Injected.Dropped; got == 0 {
		t.Fatalf("injected stats not surfaced through Delay: %+v", c.FabricStats())
	}
}

func TestTagStrings(t *testing.T) {
	for _, tag := range []Tag{TagNodalMass, TagForceX, TagForceY, TagForceZ,
		TagDelvXi, TagDelvEta, TagDelvZeta, TagReduce, Tag(99)} {
		if tag.String() == "" {
			t.Fatalf("empty string for tag %d", tag)
		}
	}
}

func TestAccessors(t *testing.T) {
	c := NewClusterLatency(3, 5*time.Millisecond)
	if c.Size() != 3 || c.Latency() != 5*time.Millisecond {
		t.Fatalf("cluster accessors: size=%d latency=%v", c.Size(), c.Latency())
	}
	e := c.Endpoint(2)
	if e.Rank() != 2 || e.Size() != 3 {
		t.Fatalf("endpoint accessors: rank=%d size=%d", e.Rank(), e.Size())
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	c := NewClusterLatency(2, 10*time.Millisecond)
	a, b := c.Endpoint(0), c.Endpoint(1)
	t0 := time.Now()
	a.Send(1, TagForceX, []float64{1})
	got := b.Recv(0, TagForceX)
	elapsed := time.Since(t0)
	if got[0] != 1 {
		t.Fatalf("payload %v", got)
	}
	if elapsed < 8*time.Millisecond {
		t.Fatalf("latency not applied: delivered after %v", elapsed)
	}
	if w := b.StatsSnapshot().Wait; w < 5*time.Millisecond {
		t.Fatalf("latency wait not accounted: %v", w)
	}
}

func TestTryRecvHonorsLatency(t *testing.T) {
	c := NewClusterLatency(2, 20*time.Millisecond)
	a, b := c.Endpoint(0), c.Endpoint(1)
	a.Send(1, TagForceX, []float64{7})
	if _, ok := b.TryRecv(0, TagForceX); ok {
		t.Fatal("TryRecv delivered a message before its latency elapsed")
	}
	time.Sleep(25 * time.Millisecond)
	got, ok := b.TryRecv(0, TagForceX)
	if !ok || got[0] != 7 {
		t.Fatalf("TryRecv after latency: %v %v", got, ok)
	}
}

func TestHeadBufferThenBlockingRecv(t *testing.T) {
	// A message parked in the head buffer by TryRecv must be delivered by
	// a subsequent blocking Recv.
	c := NewClusterLatency(2, 15*time.Millisecond)
	a, b := c.Endpoint(0), c.Endpoint(1)
	a.Send(1, TagForceX, []float64{3})
	if _, ok := b.TryRecv(0, TagForceX); ok {
		t.Fatal("premature delivery")
	}
	got := b.Recv(0, TagForceX) // must find the head and wait out latency
	if got[0] != 3 {
		t.Fatalf("payload %v", got)
	}
}
