// Command luleshd is the simulation-as-a-service control plane: a
// long-running server that accepts LULESH job submissions over HTTP/JSON,
// multiplexes them as isolated job contexts onto ONE shared many-task
// worker pool, streams per-step progress over SSE, and persists each
// completed result as a perf.BenchRecord JSON file.
//
//	luleshd -addr :8780 -threads 8 -results-dir ./results
//
// Endpoints (see README for the full table):
//
//	POST   /jobs             submit a job spec
//	GET    /jobs             list jobs
//	GET    /jobs/{id}        job status
//	GET    /jobs/{id}/events SSE progress/terminal stream
//	GET    /jobs/{id}/result completed perf.BenchRecord
//	DELETE /jobs/{id}        cancel
//	GET    /healthz          liveness (503 while draining)
//
// SIGTERM/SIGINT starts a graceful drain: new submissions answer 503,
// in-flight jobs run to completion within -drain-timeout (stragglers are
// cancelled at cycle boundaries), the results store is flushed, then the
// process exits.
//
// -metrics-addr serves the Prometheus endpoint: aggregate scheduler
// gauges (jobs_queued, jobs_running, zones_inflight, ...) plus per-job
// series labeled job="<id>".
//
// -selftest N switches to load-generator mode: an in-process server is
// stood up on an ephemeral port and N jobs are driven through the real
// HTTP API from -selftest-clients concurrent submitters; submit→done
// latency percentiles and throughput are printed, every stored result is
// re-validated, and a nonzero -selftest-p99-budget turns the p99 into an
// exit-code gate. -validate FILE checks one result JSON from disk (the
// `make serve` curl path).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"lulesh/internal/perf"
	"lulesh/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8780", "control-plane listen address (host:port, :0 = ephemeral)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus metrics on this address (\"\" = off)")
		threads     = flag.Int("threads", runtime.GOMAXPROCS(0), "shared pool worker count")
		maxJobs     = flag.Int("max-jobs", 0, "max concurrently executing jobs (0 = 4x threads)")
		maxQueue    = flag.Int("max-queue", 1024, "admission queue bound (full queue answers 429)")
		maxZones    = flag.Int64("max-zones", 4<<20, "in-flight zone budget across queued+running jobs (429 beyond)")
		resultsDir  = flag.String("results-dir", "luleshd-results", "directory for completed perf.BenchRecord JSON results")
		eventEvery  = flag.Int("event-every", 1, "publish an SSE progress frame every N cycles")
		drainT      = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown deadline for in-flight jobs")
		stealHalf   = flag.Bool("steal-half", true, "pool workers steal half a victim's queue per sweep")

		selftest  = flag.Int("selftest", 0, "run N jobs through an in-process server and report latency/throughput, then exit")
		stClients = flag.Int("selftest-clients", 8, "concurrent submitters for -selftest")
		stBudget  = flag.Duration("selftest-p99-budget", 0, "fail -selftest when submit→done p99 exceeds this (0 = report only)")
		validate  = flag.String("validate", "", "validate one perf.BenchRecord JSON file and exit")
	)
	flag.Parse()

	if *validate != "" {
		os.Exit(validateFile(*validate))
	}

	cfg := serve.Config{
		Workers:          *threads,
		MaxRunning:       *maxJobs,
		MaxQueued:        *maxQueue,
		MaxInflightZones: *maxZones,
		ResultsDir:       *resultsDir,
		EventEvery:       *eventEvery,
		StealHalf:        *stealHalf,
	}

	if *selftest > 0 {
		os.Exit(runSelftest(cfg, *selftest, *stClients, *stBudget))
	}

	m, err := serve.NewManager(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "luleshd: %v\n", err)
		os.Exit(1)
	}

	var msrv *perf.Server
	if *metricsAddr != "" {
		msrv, err = perf.StartServer(*metricsAddr, nil, m.MetricsExtra)
		if err != nil {
			fmt.Fprintf(os.Stderr, "luleshd: metrics: %v\n", err)
			os.Exit(1)
		}
		msrv.SetTextSource(m.WriteJobMetrics)
		fmt.Printf("luleshd: metrics on http://%s/metrics\n", msrv.Addr)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "luleshd: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: m.Handler()}
	maxRunning := cfg.MaxRunning
	if maxRunning < 1 {
		maxRunning = 4 * cfg.Workers // the manager's default
	}
	fmt.Printf("luleshd: serving on http://%s (threads=%d, max-jobs=%d, zone-budget=%d, results=%s)\n",
		ln.Addr(), cfg.Workers, maxRunning, cfg.MaxInflightZones, cfg.ResultsDir)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		fmt.Printf("luleshd: %v — draining (deadline %v)\n", sig, *drainT)
		// Drain first: submissions 503 while status/result/SSE stay
		// reachable, so clients can collect what finished.
		if err := m.Drain(*drainT); err != nil {
			fmt.Fprintf(os.Stderr, "luleshd: drain: %v\n", err)
		}
		srv.Close()
	case err := <-done:
		fmt.Fprintf(os.Stderr, "luleshd: server: %v\n", err)
	}
	if msrv != nil {
		msrv.Close()
	}
	if err := m.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "luleshd: close: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("luleshd: drained, results flushed, bye")
}

// validateFile loads one BenchRecord JSON and runs Validate — the check
// `make serve` applies to a curl-fetched /result body.
func validateFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "luleshd: %v\n", err)
		return 1
	}
	var rec perf.BenchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		fmt.Fprintf(os.Stderr, "luleshd: %s: %v\n", path, err)
		return 1
	}
	if err := rec.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "luleshd: %s: %v\n", path, err)
		return 1
	}
	fmt.Printf("luleshd: %s valid (job=%s scenario=%s fom=%.1f zones/s)\n",
		path, rec.JobID, rec.Scenario, rec.FOM)
	return 0
}

// selftestSpecs is the load mix: heterogeneous scenarios, sizes and
// tenants so the run exercises fair queueing and admission, not just one
// hot loop.
func selftestSpec(i int) string {
	scenarios := []string{"sedov", "piston", "multimat:regions=8"}
	return fmt.Sprintf(`{"scenario":%q,"size":%d,"iterations":%d,"tenant":"t%d"}`,
		scenarios[i%len(scenarios)], 4+i%3, 6+i%5, i%4)
}

// runSelftest drives jobs jobs through a real in-process HTTP server from
// clients concurrent submitters and reports latency and throughput.
func runSelftest(cfg serve.Config, jobs, clients int, budget time.Duration) int {
	if cfg.ResultsDir == "luleshd-results" {
		dir, err := os.MkdirTemp("", "luleshd-selftest-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "luleshd: %v\n", err)
			return 1
		}
		defer os.RemoveAll(dir)
		cfg.ResultsDir = dir
	}
	m, err := serve.NewManager(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "luleshd: %v\n", err)
		return 1
	}
	defer m.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "luleshd: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: m.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	maxRunning := cfg.MaxRunning
	if maxRunning < 1 {
		maxRunning = 4 * cfg.Workers // the manager's default
	}
	fmt.Printf("luleshd selftest: %d jobs, %d clients, %d workers, max-jobs=%d against %s\n",
		jobs, clients, cfg.Workers, maxRunning, base)

	var (
		mu      sync.Mutex
		lats    []time.Duration
		retries int
		fails   []string
	)
	next := make(chan int)
	go func() {
		for i := 0; i < jobs; i++ {
			next <- i
		}
		close(next)
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s, err := driveJob(base, selftestSpec(i))
				mu.Lock()
				if err != nil {
					fails = append(fails, fmt.Sprintf("job %d: %v", i, err))
				} else {
					lats = append(lats, s.latency)
					retries += s.retries
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	for _, f := range fails {
		fmt.Fprintf(os.Stderr, "luleshd selftest: FAIL %s\n", f)
	}
	if len(lats) == 0 {
		fmt.Fprintln(os.Stderr, "luleshd selftest: no job completed")
		return 1
	}
	sort.Slice(lats, func(i, k int) bool { return lats[i] < lats[k] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(lats)-1))
		return lats[idx]
	}
	throughput := float64(len(lats)) / wall.Seconds()
	fmt.Printf("luleshd selftest: %d/%d jobs done in %v (%.1f jobs/sec, %d admission retries)\n",
		len(lats), jobs, wall.Round(time.Millisecond), throughput, retries)
	fmt.Printf("luleshd selftest: submit->done latency p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Millisecond), pct(0.90).Round(time.Millisecond),
		pct(0.99).Round(time.Millisecond), lats[len(lats)-1].Round(time.Millisecond))

	if len(fails) > 0 {
		return 1
	}
	if budget > 0 && pct(0.99) > budget {
		fmt.Fprintf(os.Stderr, "luleshd selftest: p99 %v exceeds budget %v\n", pct(0.99), budget)
		return 1
	}
	return 0
}

// driveJob runs one job through the full client lifecycle: submit
// (re-submitting on 429/503 after the server's Retry-After, capped),
// poll status until terminal, fetch the result, and re-validate it.
func driveJob(base, spec string) (struct {
	latency time.Duration
	retries int
}, error) {
	var out struct {
		latency time.Duration
		retries int
	}
	start := time.Now()

	var id string
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			return out, err
		}
		if resp.StatusCode == http.StatusAccepted {
			var st struct {
				ID string `json:"id"`
			}
			err := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				return out, err
			}
			id = st.ID
			break
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 400 {
			out.retries++
			// The server's Retry-After is a mean-service-time guess; for a
			// local load loop a short fixed backoff converges faster.
			time.Sleep(25 * time.Millisecond)
			continue
		}
		return out, fmt.Errorf("submit: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Minute)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			return out, err
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return out, err
		}
		switch st.State {
		case "done":
			out.latency = time.Since(start)
			// Fetch and re-validate the persisted record.
			r, err := http.Get(base + "/jobs/" + id + "/result")
			if err != nil {
				return out, err
			}
			var rec perf.BenchRecord
			err = json.NewDecoder(r.Body).Decode(&rec)
			r.Body.Close()
			if err != nil {
				return out, fmt.Errorf("result: %v", err)
			}
			if err := rec.Validate(); err != nil {
				return out, fmt.Errorf("result: %v", err)
			}
			if rec.JobID != id {
				return out, fmt.Errorf("result job_id %q != %q", rec.JobID, id)
			}
			return out, nil
		case "failed", "cancelled":
			return out, fmt.Errorf("job %s: %s (%s)", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return out, fmt.Errorf("job %s stuck", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
