package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"lulesh/internal/checkpoint"
	"lulesh/internal/dist"
	"lulesh/internal/domain"
	"lulesh/internal/wire"
)

// The -net check proves the TCP fabric is invisible to the physics: a
// multi-process run (one OS process per rank, exchanges over localhost
// sockets) must finish in exactly the same state — every coordinate,
// velocity and energy bit — as the in-process run with the same rank
// count. The verifier re-executes itself as the worker processes via
// the hidden -net-worker flags; each worker writes its rank's final
// domain as a checkpoint blob, which the parent compares against the
// domains dist.RunDomains kept in memory.

// netCheck runs the wire-vs-in-process comparison for one rank count.
// With overlap set, the wire workers run the fully overlapped schedule
// (boundary-first + tree allreduce + coalesced frames) while the
// in-process ground truth stays synchronous — one comparison then
// proves both that the transport is invisible and that the overlapped
// schedule reproduces the synchronous physics bit for bit.
func netCheck(size, steps int, spec domain.ScenarioSpec, np int, overlap bool) {
	name := fmt.Sprintf("wire == in-process (%d ranks)", np)
	if overlap {
		name = fmt.Sprintf("wire overlap == in-process sync (%d ranks)", np)
	}
	cfg := domain.DefaultConfig(size)
	// Trace on: the bitwise comparison below doubles as the proof that
	// tracing never perturbs the arithmetic, on either message layer.
	// The ground truth deliberately omits the overlap toggles.
	dcfg := dist.Config{
		Nx: size, Ny: size, NzPerRank: size, Ranks: np,
		NumReg: cfg.NumReg, Balance: 1, Cost: 1, MaxIterations: steps,
		Scenario: spec, Trace: true,
	}
	_, doms, err := dist.RunDomains(dcfg)
	if err != nil {
		check(name, false, fmt.Sprintf("in-process run failed: %v", err))
		return
	}

	tmp, err := os.MkdirTemp("", "luleshverify-net-")
	if err != nil {
		check(name, false, err.Error())
		return
	}
	defer os.RemoveAll(tmp)
	bin, err := os.Executable()
	if err != nil {
		check(name, false, err.Error())
		return
	}
	cookie := wire.Cookie()
	finalFile := func(rank int) string {
		return filepath.Join(tmp, fmt.Sprintf("final-r%04d.lulcp", rank))
	}
	err = wire.Launch(wire.LaunchSpec{
		NP:     np,
		Binary: bin,
		Args: func(rank, attempt int, rendezvous string) []string {
			args := []string{
				"-net-worker",
				"-net-rank", strconv.Itoa(rank),
				"-net-ranks", strconv.Itoa(np),
				"-net-rendezvous", rendezvous,
				"-net-cookie", cookie,
				"-net-final", finalFile(rank),
				"-s", strconv.Itoa(size),
				"-i", strconv.Itoa(steps),
				"-scenario", spec.String(),
			}
			if overlap {
				args = append(args, "-net-overlap")
			}
			return args
		},
	})
	if err != nil {
		check(name, false, fmt.Sprintf("launch: %v", err))
		return
	}

	same := true
	detail := fmt.Sprintf("e0=%.9e", doms[0].E[0])
	for r := 0; r < np; r++ {
		f, err := os.Open(finalFile(r))
		if err != nil {
			same, detail = false, fmt.Sprintf("rank %d final state: %v", r, err)
			break
		}
		got, meta, err := checkpoint.LoadRank(f)
		f.Close()
		if err != nil {
			same, detail = false, fmt.Sprintf("rank %d final state: %v", r, err)
			break
		}
		if meta.Rank != r || meta.Ranks != np {
			same, detail = false, fmt.Sprintf("rank %d blob labeled %d/%d", r, meta.Rank, meta.Ranks)
			break
		}
		if !equalState(doms[r], got) {
			same, detail = false, fmt.Sprintf("rank %d state diverged", r)
			break
		}
	}
	check(name, same, detail)
}

// runNetWorker is the hidden worker mode: execute one rank of the wire
// fabric and dump its final domain for the parent to compare. With
// overlap set, the worker steps the boundary-first schedule with the
// tree allreduce and coalesced ghost frames.
func runNetWorker(size, steps int, spec domain.ScenarioSpec, rank, ranks int, rendezvous, cookie, final string, overlap bool) {
	cfg := domain.DefaultConfig(size)
	dcfg := dist.Config{
		Nx: size, Ny: size, NzPerRank: size, Ranks: ranks,
		NumReg: cfg.NumReg, Balance: 1, Cost: 1, MaxIterations: steps,
		Scenario: spec, Trace: true,
		Async: overlap, TreeReduce: overlap, Coalesce: overlap,
	}
	_, err := dist.RunWire(dcfg, dist.WireOptions{
		Rank:           rank,
		Rendezvous:     rendezvous,
		Cookie:         cookie,
		FinalStateFile: final,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "net worker rank %d: %v\n", rank, err)
		if dist.Recoverable(err) {
			os.Exit(wire.ExitRecoverable)
		}
		os.Exit(1)
	}
}
