// Command luleshverify is the artifact-style correctness gate: it runs the
// selected scenario on every backend and checks
//
//  1. bitwise agreement of the full simulation state across backends and
//     thread counts,
//  2. bitwise agreement between the synchronous and asynchronous
//     multi-domain schedules,
//  3. an exact checkpoint round trip: save mid-run, restore, continue,
//     compare against the uninterrupted run bit for bit — and reject a
//     checkpoint whose scenario tag mismatches the run,
//  4. scenario physics: axis symmetry and the energy budget for the blast
//     scenarios (sedov, multimat — the Sedov problem is invariant under
//     coordinate permutation and creates no energy), shock-front position
//     and cold-gas-ahead for piston, per-region mass conservation for
//     multimat.
//
// It exits non-zero on the first violation.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"

	"lulesh/internal/checkpoint"
	"lulesh/internal/core"
	"lulesh/internal/dist"
	"lulesh/internal/domain"
	"lulesh/internal/perf"
)

var failed bool

func check(name string, ok bool, detail string) {
	status := "ok"
	if !ok {
		status = "FAIL"
		failed = true
	}
	fmt.Printf("  [%4s] %-46s %s\n", status, name, detail)
}

func main() {
	size := flag.Int("s", 8, "problem size")
	steps := flag.Int("i", 20, "iterations to verify over")
	scenario := flag.String("scenario", "", "problem scenario: name[:key=val,...] (\"\" = sedov)")
	locality := flag.Bool("locality", false,
		"also sweep all affinity × steal-half × adaptive-grain combinations")
	netMode := flag.Bool("net", false,
		"also prove multi-process (TCP) runs bitwise identical to in-process ones")
	netWorker := flag.Bool("net-worker", false, "internal: run as one wire worker of a -net check")
	netRank := flag.Int("net-rank", 0, "internal: worker rank")
	netRanks := flag.Int("net-ranks", 0, "internal: fabric size")
	netRendezvous := flag.String("net-rendezvous", "", "internal: bootstrap address")
	netCookie := flag.String("net-cookie", "", "internal: handshake secret")
	netFinal := flag.String("net-final", "", "internal: final-state output file")
	netOverlap := flag.Bool("net-overlap", false, "internal: worker runs the overlapped schedule")
	flag.Parse()
	threads := runtime.GOMAXPROCS(0)

	spec, err := domain.ParseScenarioSpec(*scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
		os.Exit(2)
	}
	if err := domain.ValidateScenarioSpec(spec); err != nil {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
		os.Exit(2)
	}

	if *netWorker {
		runNetWorker(*size, *steps, spec, *netRank, *netRanks, *netRendezvous, *netCookie, *netFinal, *netOverlap)
		return
	}

	fmt.Printf("Verifying %d^3 %s problem over %d iterations\n\n", *size, spec.String(), *steps)

	cfg := domain.DefaultConfig(*size)
	build := func() *domain.Domain {
		d, err := domain.BuildScenarioCube(spec, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(1)
		}
		return d
	}
	runBackend := func(mk func(*domain.Domain) core.Backend) *domain.Domain {
		d := build()
		b := mk(d)
		defer b.Close()
		if _, err := core.Run(d, b, core.RunConfig{MaxIterations: *steps}); err != nil {
			fmt.Fprintf(os.Stderr, "run failed: %v\n", err)
			os.Exit(1)
		}
		return d
	}

	ref := runBackend(func(d *domain.Domain) core.Backend { return core.NewBackendSerial(d) })

	// 1. Cross-backend bitwise equality.
	backends := []struct {
		name string
		mk   func(*domain.Domain) core.Backend
	}{
		{"omp", func(d *domain.Domain) core.Backend { return core.NewBackendOMP(d, threads) }},
		{"naive", func(d *domain.Domain) core.Backend { return core.NewBackendNaive(d, threads) }},
		{"task", func(d *domain.Domain) core.Backend {
			return core.NewBackendTask(d, core.DefaultOptions(*size, threads))
		}},
	}
	for _, bk := range backends {
		got := runBackend(bk.mk)
		same := equalState(ref, got)
		check("bitwise vs serial: "+bk.name, same, fmt.Sprintf("e0=%.9e", got.E[0]))
	}

	// 1a. Observability is read-only: a task-backend run with the perf
	// profiler attached (per-phase counters recording every task) must stay
	// bitwise identical to serial.
	prof := perf.NewProfiler(threads, 0)
	got := runBackend(func(d *domain.Domain) core.Backend {
		b := core.NewBackendTask(d, core.DefaultOptions(*size, threads))
		b.SetProfiler(prof)
		return b
	})
	check("bitwise vs serial: task+profiler", equalState(ref, got),
		fmt.Sprintf("recorded %d tasks", prof.Snapshot().Tasks))

	// 1b. The locality layer is scheduling-only: every combination of
	// affinity hints, steal-half batching and adaptive grain must stay
	// bitwise identical to serial — including mid-run partition resizes.
	if *locality {
		for mask := 0; mask < 8; mask++ {
			opt := core.DefaultOptions(*size, threads)
			opt.Affinity = mask&1 != 0
			opt.StealHalf = mask&2 != 0
			opt.AdaptiveGrain = mask&4 != 0
			got := runBackend(func(d *domain.Domain) core.Backend {
				return core.NewBackendTask(d, opt)
			})
			name := fmt.Sprintf("task locality aff=%d half=%d adapt=%d",
				mask&1, mask>>1&1, mask>>2&1)
			check(name, equalState(ref, got), fmt.Sprintf("e0=%.9e", got.E[0]))
		}
	}

	// 1c. The slab field layout is memory-only: a domain built with the
	// historical scalar layout (one allocation per field) must end bitwise
	// identical to the slab-backed reference, on the serial and the task
	// backend alike.
	buildScalar := func() *domain.Domain {
		d, err := domain.BuildScenario(spec, domain.BoxConfig{
			Nx: *size, Ny: *size, Nz: *size,
			NumReg: cfg.NumReg, Balance: cfg.Balance, Cost: cfg.Cost,
			DepositEnergy: true,
			FieldLayout:   domain.LayoutScalar,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(1)
		}
		return d
	}
	runScalar := func(mk func(*domain.Domain) core.Backend) *domain.Domain {
		d := buildScalar()
		b := mk(d)
		defer b.Close()
		if _, err := core.Run(d, b, core.RunConfig{MaxIterations: *steps}); err != nil {
			fmt.Fprintf(os.Stderr, "run failed: %v\n", err)
			os.Exit(1)
		}
		return d
	}
	scalarSerial := runScalar(func(d *domain.Domain) core.Backend { return core.NewBackendSerial(d) })
	check("layout A/B: scalar serial == slab serial", equalState(ref, scalarSerial),
		fmt.Sprintf("layouts %s vs %s", scalarSerial.Layout, ref.Layout))
	scalarTask := runScalar(func(d *domain.Domain) core.Backend {
		return core.NewBackendTask(d, core.DefaultOptions(*size, threads))
	})
	check("layout A/B: scalar task == slab serial", equalState(ref, scalarTask),
		fmt.Sprintf("e0=%.9e", scalarTask.E[0]))

	// 2. Distributed schedules agree bitwise with each other: every
	// combination of the overlap toggles — boundary-first scheduling,
	// the binomial-tree allreduce, coalesced ghost frames — must leave
	// every state array of every rank bit-for-bit equal to the plain
	// synchronous schedule.
	dcfg := dist.Config{
		Nx: *size, Ny: *size, NzPerRank: *size, Ranks: 2,
		NumReg: cfg.NumReg, Balance: 1, Cost: 1, MaxIterations: *steps,
		Scenario: spec,
	}
	_, syncDoms, err := dist.RunDomains(dcfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist sync failed: %v\n", err)
		os.Exit(1)
	}
	for mask := 1; mask < 8; mask++ {
		ocfg := dcfg
		ocfg.Async = mask&1 != 0
		ocfg.TreeReduce = mask&2 != 0
		ocfg.Coalesce = mask&4 != 0
		_, doms, err := dist.RunDomains(ocfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dist %s failed: %v\n", scheduleName(ocfg), err)
			os.Exit(1)
		}
		same := len(doms) == len(syncDoms)
		for r := 0; same && r < len(doms); r++ {
			same = equalState(syncDoms[r], doms[r])
		}
		check(fmt.Sprintf("dist sync == %s (2 ranks)", scheduleName(ocfg)), same,
			fmt.Sprintf("e0=%.9e", doms[0].E[0]))
	}

	// 2a. The TCP fabric is invisible: multi-process runs (one OS process
	// per rank, exchanges over localhost sockets) end bitwise identical to
	// the in-process runs with the same decomposition — including when the
	// workers run the fully overlapped schedule against a synchronous
	// in-process ground truth, which proves schedule and transport are
	// independent in one shot.
	if *netMode {
		netCheck(*size, *steps, spec, 8, false)
		netCheck(*size, *steps, spec, 1, false)
		netCheck(*size, *steps, spec, 8, true)
	}

	// 3. Checkpoint round trip: interrupt at half distance, restore through
	// the scenario registry, continue — the result must equal the
	// uninterrupted reference bit for bit, and the restored tag must match.
	checkpointRoundTrip(ref, spec, cfg, *steps)

	// 4. Scenario physics.
	name := spec.Name
	if name == "" {
		name = domain.ScenarioSedov
	}
	switch name {
	case domain.ScenarioSedov, domain.ScenarioMultimat:
		// Both run the Sedov blast (multimat changes only the region
		// decomposition), so symmetry and the energy budget apply.
		maxAsym := axisAsymmetry(ref)
		check("axis symmetry", maxAsym < 1e-9, fmt.Sprintf("max rel asym %.2e", maxAsym))

		e0 := initialEnergy(build())
		internal, kinetic := energies(ref)
		total := internal + kinetic
		check("no energy creation", total <= e0*(1+1e-9),
			fmt.Sprintf("total/e0 = %.6f", total/e0))
		check("bounded dissipation", total >= 0.7*e0,
			fmt.Sprintf("loss %.1f%%", 100*(e0-total)/e0))
		if name == domain.ScenarioMultimat {
			checkRegionMass(build(), ref)
		}
	case domain.ScenarioPiston:
		checkPiston(ref)
	}

	if failed {
		fmt.Println("\nVERIFICATION FAILED")
		os.Exit(1)
	}
	fmt.Println("\nAll checks passed.")
}

// checkpointRoundTrip proves save/restore is exact for the scenario: the
// interrupted-and-resumed run must end bit-for-bit equal to ref, and the
// restore path must reject a deliberately mismatched scenario tag.
func checkpointRoundTrip(ref *domain.Domain, spec domain.ScenarioSpec, cfg domain.Config, steps int) {
	half := steps / 2
	d, err := domain.BuildScenarioCube(spec, cfg)
	if err != nil {
		check("checkpoint round trip", false, err.Error())
		return
	}
	b := core.NewBackendSerial(d)
	if _, err := core.Run(d, b, core.RunConfig{MaxIterations: half}); err != nil {
		b.Close()
		check("checkpoint round trip", false, err.Error())
		return
	}
	var buf bytes.Buffer
	if err := checkpoint.SaveCube(&buf, d, cfg); err != nil {
		b.Close()
		check("checkpoint round trip", false, err.Error())
		return
	}
	b.Close()

	resumed, err := checkpoint.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		check("checkpoint round trip", false, err.Error())
		return
	}
	if err := checkpoint.ExpectScenario(resumed, spec); err != nil {
		check("checkpoint round trip", false, err.Error())
		return
	}
	b2 := core.NewBackendSerial(resumed)
	defer b2.Close()
	// MaxIterations caps the absolute cycle count, so the resumed run
	// carries the same cap as the reference.
	if _, err := core.Run(resumed, b2, core.RunConfig{MaxIterations: steps}); err != nil {
		check("checkpoint round trip", false, err.Error())
		return
	}
	check("checkpoint round trip (restore via registry)", equalState(ref, resumed),
		fmt.Sprintf("resumed at cycle %d", half))

	// The guard must reject a tag that names a different scenario.
	other := domain.ScenarioSpec{Name: domain.ScenarioPiston,
		Options: map[string]string{"speed": "42"}}
	if resumed.Scenario.Equal(other) {
		other = domain.ScenarioSpec{Name: domain.ScenarioSedov}
	}
	err = checkpoint.ExpectScenario(resumed, other)
	check("checkpoint scenario mismatch rejected",
		errors.Is(err, checkpoint.ErrScenarioMismatch),
		fmt.Sprintf("tag %s vs run %s", resumed.Scenario.String(), other.String()))
}

// checkPiston verifies the piston scenario's physics on the final state: a
// shock front exists, it sits inside the box (the face has moved inward),
// gas well ahead of the front is still cold, and the piston has done
// positive work on the gas.
func checkPiston(d *domain.Domain) {
	h := 1.125 / float64(d.Mesh.EdgeElems)
	front := math.Inf(1)
	var x, y, z [8]float64
	center := func(e int) float64 {
		d.CollectElemNodes(e, &x, &y, &z)
		c := 0.0
		for _, v := range x {
			c += v
		}
		return c / 8
	}
	for e := 0; e < d.NumElem(); e++ {
		if d.P[e] > 1e-6 && center(e) < front {
			front = center(e)
		}
	}
	check("piston shock front exists", !math.IsInf(front, 1),
		fmt.Sprintf("front x=%.4f", front))
	if math.IsInf(front, 1) {
		return
	}
	cold := true
	worst := 0.0
	for e := 0; e < d.NumElem(); e++ {
		if center(e) < front-2*h && math.Abs(d.P[e]) > 1e-6 {
			cold = false
			worst = math.Max(worst, math.Abs(d.P[e]))
		}
	}
	check("gas ahead of front is cold", cold, fmt.Sprintf("max |p| ahead %.2e", worst))
	internal, kinetic := energies(d)
	check("piston does positive work", internal+kinetic > 0,
		fmt.Sprintf("E=%.6e", internal+kinetic))
}

// checkRegionMass verifies per-region mass conservation for multimat: the
// mass of every region, recomputed from the deformed geometry and the EOS
// density, must match the initial region mass.
func checkRegionMass(initial, final *domain.Domain) {
	ref := regionMasses(initial)
	got := regionMasses(final)
	worst := 0.0
	for r := range ref {
		if ref[r] == 0 {
			continue
		}
		worst = math.Max(worst, math.Abs(got[r]-ref[r])/ref[r])
	}
	check("per-region mass conserved", worst < 1e-8,
		fmt.Sprintf("%d regions, max drift %.2e", len(ref), worst))
}

func regionMasses(d *domain.Domain) []float64 {
	masses := make([]float64, d.Regions.NumReg)
	var x, y, z [8]float64
	for r, list := range d.Regions.ElemList {
		for _, e := range list {
			d.CollectElemNodes(int(e), &x, &y, &z)
			masses[r] += d.Par.RefDens / d.V[e] * domain.ElemVolume(&x, &y, &z)
		}
	}
	return masses
}

// scheduleName names a toggle combination the way the CSV schedule
// column does: "sync" or "async", with "+tree"/"+coalesce" suffixes.
func scheduleName(cfg dist.Config) string {
	s := "sync"
	if cfg.Async {
		s = "async"
	}
	if cfg.TreeReduce {
		s += "+tree"
	}
	if cfg.Coalesce {
		s += "+coalesce"
	}
	return s
}

func equalState(a, b *domain.Domain) bool {
	pairs := [][2][]float64{
		{a.X, b.X}, {a.Y, b.Y}, {a.Z, b.Z},
		{a.Xd, b.Xd}, {a.Yd, b.Yd}, {a.Zd, b.Zd},
		{a.E, b.E}, {a.P, b.P}, {a.Q, b.Q}, {a.V, b.V}, {a.SS, b.SS},
	}
	for _, pr := range pairs {
		for i := range pr[0] {
			if pr[0][i] != pr[1][i] {
				return false
			}
		}
	}
	return a.Time == b.Time && a.Cycle == b.Cycle
}

func axisAsymmetry(d *domain.Domain) float64 {
	en := d.Mesh.EdgeNodes
	node := func(i, j, k int) int { return k*en*en + j*en + i }
	worst := 0.0
	rel := func(a, b float64) float64 {
		den := math.Max(math.Abs(a), math.Abs(b))
		if den < 1e-300 {
			return 0
		}
		return math.Abs(a-b) / den
	}
	for k := 0; k < en; k++ {
		for j := 0; j < en; j++ {
			for i := 0; i < en; i++ {
				a := node(i, j, k)
				b := node(j, i, k)
				worst = math.Max(worst, rel(d.X[a], d.Y[b]))
				worst = math.Max(worst, rel(d.Y[a], d.X[b]))
				c := node(i, k, j)
				worst = math.Max(worst, rel(d.Y[a], d.Z[c]))
			}
		}
	}
	return worst
}

func initialEnergy(d *domain.Domain) float64 {
	e := 0.0
	for i := range d.E {
		e += d.E[i] * d.Volo[i]
	}
	return e
}

func energies(d *domain.Domain) (internal, kinetic float64) {
	for e := 0; e < d.NumElem(); e++ {
		internal += d.E[e] * d.Volo[e]
	}
	for n := 0; n < d.NumNode(); n++ {
		v2 := d.Xd[n]*d.Xd[n] + d.Yd[n]*d.Yd[n] + d.Zd[n]*d.Zd[n]
		kinetic += 0.5 * d.NodalMass[n] * v2
	}
	return
}
