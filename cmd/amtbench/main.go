// Command amtbench microbenchmarks the two parallel runtimes the LULESH
// backends are built on: the fork-join pool (internal/omp) and the AMT
// scheduler (internal/amt). It reports the raw synchronization costs that
// explain the application-level results — the cost of one fork-join
// dispatch (what the OpenMP reference pays per loop) versus the cost of
// task spawning, chaining and when_all joins (what the task backend pays)
// — together with the heap allocations each dispatch performs, since the
// pooled-frame fast path lives or dies by allocs/op.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"lulesh/internal/amt"
	"lulesh/internal/omp"
	"lulesh/internal/perf"
)

func main() {
	workers := flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads")
	n := flag.Int("n", 20000, "operations per measurement")
	flag.Parse()

	fmt.Printf("runtime microbenchmarks, %d threads, %d ops each\n\n", *workers, *n)

	bench := func(name string, once func()) {
		// Warm up (also populates the frame pool), then measure both wall
		// time and the caller-side allocation count via Mallocs deltas.
		for i := 0; i < 100; i++ {
			once()
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for i := 0; i < *n; i++ {
			once()
		}
		d := time.Since(t0)
		runtime.ReadMemStats(&m1)
		allocs := float64(m1.Mallocs-m0.Mallocs) / float64(*n)
		fmt.Printf("  %-34s %v/op  %6.1f allocs/op\n",
			name, d/time.Duration(*n), allocs)
	}

	p := omp.NewPool(*workers)
	bench("omp: empty parallel region", func() {
		p.Parallel(func(tid int) {})
	})
	bench("omp: empty parallel-for (1k iters)", func() {
		p.ParallelFor(1000, func(i int) {})
	})
	bench("omp: static region (1k iters)", func() {
		p.ParallelStatic(1000, func(tid, lo, hi int) {})
	})
	p.Close()

	s := amt.NewScheduler(amt.WithWorkers(*workers))
	defer s.Close()

	bench("amt: spawn+complete one task", func() {
		amt.Run(s, func() {}).Get()
	})
	bench("amt: chain of 4 continuations", func() {
		f := amt.Run(s, func() {})
		for i := 0; i < 3; i++ {
			f = amt.ThenRun(f, func(amt.Unit) {})
		}
		f.Get()
	})
	fs := make([]*amt.Void, 0, 2**workers)
	bench("amt: fork/join across workers", func() {
		fs = fs[:0]
		for i := 0; i < 2**workers; i++ {
			fs = append(fs, amt.Run(s, func() {}))
		}
		amt.AfterAll(s, fs).Get()
	})
	fns := make([]func(), 2**workers)
	for i := range fns {
		fns[i] = func() {}
	}
	bench("amt: batched fork/join (RunBatch)", func() {
		amt.AfterAll(s, amt.RunBatch(s, fns)).Get()
	})
	bench("amt: for_each (1k iters, chunked)", func() {
		amt.ForEach(s, 0, 1000, 128, func(i int) {}).Get()
	})
	bench("amt: for_each (sub-grain, inline)", func() {
		amt.ForEach(s, 0, 100, 128, func(i int) {}).Get()
	})

	// Fire-and-forget throughput: how many empty tasks per second the
	// scheduler drains, submitted one at a time versus in batches of 16.
	const burst = 200000
	t0 := time.Now()
	for i := 0; i < burst; i++ {
		s.Spawn(func() {})
	}
	s.Quiesce()
	d := time.Since(t0)
	fmt.Printf("  %-34s %v/op (%.1fM tasks/s)\n", "amt: fire-and-forget throughput",
		d/time.Duration(burst), float64(burst)/d.Seconds()/1e6)

	batch := make([]amt.Task, 16)
	for i := range batch {
		batch[i] = func() {}
	}
	t0 = time.Now()
	for i := 0; i < burst/len(batch); i++ {
		s.SpawnBatch(batch)
	}
	s.Quiesce()
	d = time.Since(t0)
	fmt.Printf("  %-34s %v/op (%.1fM tasks/s)\n", "amt: batched spawn throughput",
		d/time.Duration(burst), float64(burst)/d.Seconds()/1e6)

	c := s.CountersSnapshot()
	fmt.Printf("\nscheduler counters: %v\n", c)

	// Instrumented dispatch: a perf sink timestamps every frame at enqueue,
	// so the queue-wait column is the spawn-to-start latency the solver's
	// tasks experience, and the park counters price the wake protocol.
	prof := perf.NewProfiler(*workers, 0)
	s.ResetCounters()
	s.SetSink(prof)
	for i := 0; i < burst/10; i++ {
		s.Spawn(func() {})
	}
	s.Quiesce()
	s.SetSink(nil)
	if snap := prof.Snapshot(); len(snap.Phases) > 0 {
		ph := snap.Phases[0]
		ci := s.CountersSnapshot()
		fmt.Printf("\ninstrumented dispatch (%d tasks)\n", ph.Count)
		fmt.Printf("  %-34s p50=%v p95=%v p99=%v\n", "task duration", ph.P50, ph.P95, ph.P99)
		fmt.Printf("  %-34s avg=%v total=%v\n", "queue wait (enqueue to start)",
			ph.QueueWait/time.Duration(ph.Count), ph.QueueWait)
		fmt.Printf("  %-34s parks=%d parked=%.1f%% of worker time\n", "park/unpark",
			ci.Parks, 100*ci.ParkedRate())
	}

	// Contended stealing: every task in a burst is pinned to worker 0, so
	// all other workers can make progress only by stealing — the worst
	// case for the steal path and the workload where steal-half batching
	// pays. Reported per burst: drain time, successful steal sweeps per
	// task, and frames migrated per sweep (1.0 without steal-half).
	const pinBurst = 512
	pinned := make([]amt.Task, pinBurst)
	zeros := make([]int, pinBurst)
	sink := 0.0
	for i := range pinned {
		pinned[i] = func() {
			acc := 0.0
			for k := 0; k < 200; k++ {
				acc += float64(k)
			}
			sink += acc
		}
	}
	fmt.Printf("\ncontended stealing (%d-task bursts pinned to worker 0, %d workers)\n",
		pinBurst, *workers)
	for _, half := range []bool{false, true} {
		sc := amt.NewScheduler(amt.WithWorkers(*workers), amt.WithStealHalf(half))
		drain := func() {
			sc.SpawnBatchAt(pinned, zeros)
			sc.Quiesce()
		}
		for i := 0; i < 20; i++ {
			drain()
		}
		sc.ResetCounters()
		reps := *n / pinBurst
		if reps < 10 {
			reps = 10
		}
		t0 = time.Now()
		for i := 0; i < reps; i++ {
			drain()
		}
		d = time.Since(t0)
		cc := sc.CountersSnapshot()
		fmt.Printf("  %-34s %v/burst  %.4f steals/task  %.2f frames/steal\n",
			fmt.Sprintf("steal-half=%v", half),
			d/time.Duration(reps),
			float64(cc.Steals)/float64(cc.Tasks), cc.FramesPerSteal())
		sc.Close()
	}

	// Region steady state: the same blocked loop over the same index range
	// repeated many times, as the solver does every stage of every
	// timestep. With a block-distributed home map each worker should keep
	// re-touching its own slice (few steals, high hit rate); unhinted
	// round-robin placement is the baseline.
	const regionN, regionGrain = 1 << 16, 256
	body := func(lo, hi int) {
		acc := 0.0
		for i := lo; i < hi; i++ {
			acc += float64(i)
		}
		sink += acc
	}
	fmt.Printf("\nregion steady state (ForEachBlock over %d indices, grain %d)\n",
		regionN, regionGrain)
	for _, hinted := range []bool{false, true} {
		sc := amt.NewScheduler(amt.WithWorkers(*workers), amt.WithStealHalf(true))
		var home func(lo, hi int) int
		if hinted {
			home = func(lo, hi int) int { return lo * *workers / regionN }
		}
		run := func() { amt.ForEachBlockAt(sc, 0, regionN, regionGrain, home, body).Get() }
		for i := 0; i < 20; i++ {
			run()
		}
		sc.ResetCounters()
		reps := *n / 100
		if reps < 50 {
			reps = 50
		}
		t0 = time.Now()
		for i := 0; i < reps; i++ {
			run()
		}
		d = time.Since(t0)
		cc := sc.CountersSnapshot()
		line := fmt.Sprintf("  %-34s %v/region  %.4f steals/task",
			fmt.Sprintf("affinity hints=%v", hinted),
			d/time.Duration(reps),
			float64(cc.Steals)/float64(cc.Tasks))
		if rate, ok := cc.AffinityHitRate(); ok {
			line += fmt.Sprintf("  %.1f%% affinity hits", 100*rate)
		}
		fmt.Println(line)
		sc.Close()
	}
	_ = sink
}
