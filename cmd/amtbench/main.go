// Command amtbench microbenchmarks the two parallel runtimes the LULESH
// backends are built on: the fork-join pool (internal/omp) and the AMT
// scheduler (internal/amt). It reports the raw synchronization costs that
// explain the application-level results — the cost of one fork-join
// dispatch (what the OpenMP reference pays per loop) versus the cost of
// task spawning, chaining and when_all joins (what the task backend pays).
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"lulesh/internal/amt"
	"lulesh/internal/omp"
)

func main() {
	workers := flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads")
	n := flag.Int("n", 20000, "operations per measurement")
	flag.Parse()

	fmt.Printf("runtime microbenchmarks, %d threads, %d ops each\n\n", *workers, *n)

	bench := func(name string, once func()) {
		// Warm up, then measure.
		for i := 0; i < 100; i++ {
			once()
		}
		t0 := time.Now()
		for i := 0; i < *n; i++ {
			once()
		}
		fmt.Printf("  %-34s %v/op\n", name, time.Since(t0)/time.Duration(*n))
	}

	p := omp.NewPool(*workers)
	bench("omp: empty parallel region", func() {
		p.Parallel(func(tid int) {})
	})
	bench("omp: empty parallel-for (1k iters)", func() {
		p.ParallelFor(1000, func(i int) {})
	})
	p.Close()

	s := amt.NewScheduler(amt.WithWorkers(*workers))
	defer s.Close()

	bench("amt: spawn+complete one task", func() {
		amt.Run(s, func() {}).Get()
	})
	bench("amt: chain of 4 continuations", func() {
		f := amt.Run(s, func() {})
		for i := 0; i < 3; i++ {
			f = amt.ThenRun(f, func(amt.Unit) {})
		}
		f.Get()
	})
	fs := make([]*amt.Void, 0, 2**workers)
	bench("amt: fork/join across workers", func() {
		fs = fs[:0]
		for i := 0; i < 2**workers; i++ {
			fs = append(fs, amt.Run(s, func() {}))
		}
		amt.AfterAll(s, fs).Get()
	})
	bench("amt: for_each (1k iters, chunked)", func() {
		amt.ForEach(s, 0, 1000, 128, func(i int) {}).Get()
	})

	// Fire-and-forget throughput: how many empty tasks per second the
	// scheduler drains.
	const burst = 200000
	t0 := time.Now()
	for i := 0; i < burst; i++ {
		s.Spawn(func() {})
	}
	s.Quiesce()
	d := time.Since(t0)
	fmt.Printf("  %-34s %v/op (%.1fM tasks/s)\n", "amt: fire-and-forget throughput",
		d/time.Duration(burst), float64(burst)/d.Seconds()/1e6)

	c := s.CountersSnapshot()
	fmt.Printf("\nscheduler counters: %v\n", c)
}
