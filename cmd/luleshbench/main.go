// Command luleshbench regenerates the evaluation of the paper
// "Speeding-Up LULESH on HPX" (SC 2024): one sub-experiment per table or
// figure, printing the same rows/series the paper reports.
//
//	luleshbench -fig 9             runtime vs. execution threads (Figure 9)
//	luleshbench -fig 10            speed-up vs. size and regions (Figure 10)
//	luleshbench -fig 11            productive-time ratio (Figure 11)
//	luleshbench -fig naive         naive for_each port vs. omp vs. task (§III)
//	luleshbench -table 1           partition-size tuning (Table I)
//	luleshbench -ablation          contribution of each technique (§IV)
//	luleshbench -sweep             scenarios × sizes × threads × backends
//	luleshbench -benchgate         regression gate against committed BENCH_<n>.json
//
// Every experiment accepts -scenario to swap the problem setup (sedov,
// piston, multimat); all scenarios run the identical kernels, so relative
// backend comparisons stay meaningful per scenario.
//
// Problem sizes and thread counts default to values scaled to this
// machine; pass -sizes and -threads to override (e.g. the paper's full
// -sizes 45,60,75,90,120,150 -threads 1,2,4,8,16,24,32,48 on a 24-core
// host). Iteration counts are capped (-i) exactly as the paper's reduced
// artifact-evaluation protocol does; relative comparisons are preserved.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"lulesh/internal/core"
	"lulesh/internal/dist"
	"lulesh/internal/domain"
	"lulesh/internal/perf"
	"lulesh/internal/stats"
)

type config struct {
	sizes    []int
	threads  []int
	regions  []int
	iters    int
	reps     int
	csv      bool
	record   string              // directory for BENCH_<n>.json records ("" = off)
	name     string              // experiment label stamped into records
	scenario domain.ScenarioSpec // normalized problem scenario (zero = sedov)
}

// liveSrv, when non-nil, is the -metrics-addr endpoint; measure points it
// at whichever profiler belongs to the measurement currently running.
var liveSrv *perf.Server

func main() {
	var (
		fig     = flag.String("fig", "", "figure to reproduce: 9 | 10 | 11 | naive | dist")
		table   = flag.String("table", "", "table to reproduce: 1")
		ablate  = flag.Bool("ablation", false, "run the technique ablation study")
		local   = flag.Bool("locality", false, "run the locality-layer ablation (affinity, steal-half, adaptive grain)")
		sched   = flag.Bool("schedules", false, "compare OpenMP loop schedules against the task backend")
		sizes   = flag.String("sizes", "", "comma-separated problem sizes (default machine-scaled)")
		threads = flag.String("threads", "", "comma-separated thread counts (default 1..2*cores)")
		regs    = flag.String("regions", "11,16,21", "comma-separated region counts (Figure 10)")
		iters   = flag.Int("i", 0, "iteration cap per run (0 = size-scaled default)")
		reps    = flag.Int("reps", 1, "repetitions per measurement (min is reported)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		record  = flag.String("record", "", "write one machine-readable BENCH_<n>.json per measurement to this directory")
		metrics = flag.String("metrics-addr", "", "serve live Prometheus/JSON metrics and pprof for the measurement in flight")

		scenario = flag.String("scenario", "", "problem scenario name[:key=val,...] (sedov | piston | multimat)")
		sweepF   = flag.Bool("sweep", false, "run the scenario sweep: scenarios x sizes x threads x backends")
		scens    = flag.String("scenarios", "sedov,piston,multimat", "comma-separated scenario specs for -sweep")
		backs    = flag.String("backends", "omp,task", "comma-separated backends for -sweep (serial|naive|omp|task)")
		gateF    = flag.Bool("benchgate", false, "re-measure the baseline BENCH_<n>.json configurations and fail on grind-time regression")
		baseDir  = flag.String("baseline", ".", "directory holding the baseline BENCH_<n>.json records for -benchgate")
		gateTol  = flag.Float64("gate-tol", 0.10, "benchgate relative grind-time tolerance")
		gateAbs  = flag.Bool("gate-absolute", false, "benchgate: compare raw grind times (same machine) instead of median-normalized ratios")
		stallF   = flag.String("stall-report", "", "print the critical-path/stall report of a fleet snapshot JSON (written by lulesh -fleet-out)")
	)
	flag.Parse()

	spec, err := domain.ParseScenarioSpec(*scenario)
	if err == nil {
		spec, err = domain.NormalizeScenarioSpec(spec)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}

	cores := runtime.GOMAXPROCS(0)
	cfg := config{
		sizes:    parseList(*sizes, []int{10, 16, 24}),
		threads:  parseList(*threads, defaultThreads(cores)),
		regions:  parseList(*regs, []int{11, 16, 21}),
		iters:    *iters,
		reps:     *reps,
		csv:      *csv,
		record:   *record,
		scenario: spec,
	}
	if *metrics != "" {
		srv, err := perf.StartServer(*metrics, nil, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		liveSrv = srv
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics (JSON at /metrics.json, pprof at /debug/pprof/)\n", srv.Addr)
	}

	switch {
	case *fig == "9":
		cfg.name = "figure9"
		figure9(cfg)
	case *fig == "dist":
		cfg.name = "dist"
		figureDist(cfg)
	case *fig == "10":
		cfg.name = "figure10"
		figure10(cfg)
	case *fig == "11":
		cfg.name = "figure11"
		figure11(cfg)
	case *fig == "naive":
		cfg.name = "naive"
		figureNaive(cfg)
	case *table == "1":
		cfg.name = "table1"
		tableI(cfg)
	case *ablate:
		cfg.name = "ablation"
		ablation(cfg)
	case *local:
		cfg.name = "locality"
		locality(cfg)
	case *sched:
		cfg.name = "schedules"
		schedules(cfg)
	case *sweepF:
		cfg.name = "sweep"
		sweep(cfg, splitList(*scens), splitList(*backs))
	case *gateF:
		benchgate(cfg, *baseDir, *gateTol, *gateAbs)
	case *stallF != "":
		stallReport(*stallF)
	default:
		fmt.Fprintln(os.Stderr, "pick one of: -fig 9 | -fig 10 | -fig 11 | -fig naive | -fig dist | -table 1 | -ablation | -locality | -schedules | -sweep | -benchgate | -stall-report FILE")
		flag.Usage()
		os.Exit(2)
	}
}

// stallReport loads a fleet snapshot (lulesh -fleet-out) and prints its
// post-run critical-path / stall analysis.
func stallReport(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stall-report: %v\n", err)
		os.Exit(1)
	}
	fs, err := perf.LoadFleetSnapshot(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "stall-report: %v\n", err)
		os.Exit(1)
	}
	perf.BuildStallReport(fs).WriteText(os.Stdout)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseList(s string, def []int) []int {
	if s == "" {
		return def
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad list entry %q: %v\n", part, err)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func defaultThreads(cores int) []int {
	var out []int
	for t := 1; t < cores; t *= 2 {
		out = append(out, t)
	}
	out = append(out, cores, 2*cores)
	return out
}

// iterCap mirrors the paper's reduced-iteration protocol: larger problems
// run fewer cycles so every measurement fits a comparable time budget.
func (c config) iterCap(size int) int {
	if c.iters > 0 {
		return c.iters
	}
	switch {
	case size <= 10:
		return 80
	case size <= 16:
		return 40
	case size <= 24:
		return 20
	case size <= 32:
		return 12
	default:
		return 6
	}
}

// buildDomain constructs the scenario domain for one cubic measurement.
// Scenarios with their own region model (multimat) override the regions
// argument with their option set.
func buildDomain(c config, size, regions int) *domain.Domain {
	d, err := domain.BuildScenarioCube(c.scenario, domain.Config{
		EdgeElems: size, NumReg: regions, Balance: 1, Cost: 1,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
		os.Exit(2)
	}
	return d
}

// measure runs one configuration reps times and returns the minimum
// runtime in seconds together with the last run's utilization.
func measure(c config, size, regions, threads int, backend string) (sec, util float64, hasUtil bool) {
	best, util, hasUtil := measureBest(c, size, regions, threads, backend)
	return best.Elapsed.Seconds(), util, hasUtil
}

// measureBest is measure returning the full best-rep Result (iterations,
// FOM). When -record or -metrics-addr is active, a per-measurement
// profiler collects the phase breakdown: the live endpoint follows it,
// and the best rep is written out as a BENCH_<n>.json record.
func measureBest(c config, size, regions, threads int, backend string) (best core.Result, util float64, hasUtil bool) {
	var s stats.Sample
	var prof *perf.Profiler
	if c.record != "" || liveSrv != nil {
		prof = perf.NewProfiler(threads, 0)
		if liveSrv != nil {
			liveSrv.SetProfiler(prof)
		}
	}
	for r := 0; r < c.reps; r++ {
		d := buildDomain(c, size, regions)
		var b core.Backend
		switch backend {
		case "serial":
			b = core.NewBackendSerial(d)
		case "omp":
			b = core.NewBackendOMP(d, threads)
		case "naive":
			b = core.NewBackendNaive(d, threads)
		case "task":
			b = core.NewBackendTask(d, core.DefaultOptions(size, threads))
		default:
			panic("unknown backend " + backend)
		}
		if prof != nil {
			if pb, ok := b.(core.PhaseProfiled); ok {
				pb.SetProfiler(prof)
			}
		}
		var counters map[string]float64
		res, err := core.Run(d, b, core.RunConfig{MaxIterations: c.iterCap(size)})
		if tb, ok := b.(*core.BackendTask); ok && c.record != "" {
			ctr := tb.Counters()
			counters = map[string]float64{
				"tasks":       float64(ctr.Tasks),
				"steals":      float64(ctr.Steals),
				"parks":       float64(ctr.Parks),
				"utilization": ctr.Utilization(),
			}
			if rate, ok := ctr.AffinityHitRate(); ok {
				counters["affinity_hit_rate"] = rate
			}
		}
		b.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "run failed (%s s=%d r=%d t=%d): %v\n",
				backend, size, regions, threads, err)
			os.Exit(1)
		}
		s.Add(res.Elapsed.Seconds())
		util, hasUtil = res.Utilization, res.HasUtil
		if r == 0 || res.Elapsed < best.Elapsed {
			best = res
		}
		if c.record != "" && r == c.reps-1 {
			rec := perf.BenchRecord{
				Name: c.name, Scenario: c.scenario.String(),
				Backend: backend, Workers: threads,
				Size: size, Regions: d.Regions.NumReg, Iterations: best.Iterations,
				ElapsedSec: s.Min(), FOM: zps(best), GrindUsZC: grind(best),
				Counters: counters,
			}
			if prof != nil {
				rec.Phases = prof.Snapshot().Phases
			}
			if path, err := perf.WriteBenchJSON(c.record, rec); err != nil {
				fmt.Fprintf(os.Stderr, "record: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "recorded %s\n", path)
			}
		}
	}
	return best, util, hasUtil
}

// zps converts core.Result.FOM (kilo-zones/s) to zones/s, the unit
// BenchRecord stores.
func zps(res core.Result) float64 {
	return res.FOM() * 1000
}

// grind converts a run result to the grind time in us/zone/cycle — the
// size-independent metric the bench gate compares.
func grind(res core.Result) float64 {
	if z := zps(res); z > 0 {
		return 1e6 / z
	}
	return 0
}

func emit(c config, t *stats.Table) {
	if c.csv {
		t.WriteCSV(os.Stdout)
		return
	}
	t.Write(os.Stdout)
}

// figure9 reproduces Figure 9: total runtime over the number of execution
// threads, one series per problem size, for the fork-join reference and
// the task backend.
func figure9(c config) {
	fmt.Printf("Figure 9: runtime [s] vs execution threads (iteration caps applied)\n\n")
	for _, size := range c.sizes {
		t := stats.NewTable("threads", "omp [s]", "task [s]", "task/omp speedup")
		for _, th := range c.threads {
			omp, _, _ := measure(c, size, 11, th, "omp")
			task, _, _ := measure(c, size, 11, th, "task")
			t.AddRow(th, omp, task, omp/task)
		}
		fmt.Printf("problem size %d (%d iterations)\n", size, c.iterCap(size))
		emit(c, t)
		fmt.Println()
	}
}

// figure10 reproduces Figure 10: speed-up of the task backend over the
// fork-join reference at a fixed thread count, for varying problem sizes
// and region counts.
func figure10(c config) {
	th := c.threads[len(c.threads)-1]
	if cores := runtime.GOMAXPROCS(0); contains(c.threads, cores) {
		th = cores // the paper fixes threads at the core count (24)
	}
	fmt.Printf("Figure 10: task-over-omp speed-up at %d threads\n\n", th)
	t := stats.NewTable(append([]string{"size"}, regionHeaders(c.regions)...)...)
	for _, size := range c.sizes {
		row := []interface{}{size}
		for _, nr := range c.regions {
			omp, _, _ := measure(c, size, nr, th, "omp")
			task, _, _ := measure(c, size, nr, th, "task")
			row = append(row, omp/task)
		}
		t.AddRow(row...)
	}
	emit(c, t)
}

func regionHeaders(regions []int) []string {
	out := make([]string, len(regions))
	for i, r := range regions {
		out[i] = fmt.Sprintf("speedup @%d regions", r)
	}
	return out
}

// figure11 reproduces Figure 11: the ratio of productive worker time to
// total execution time for both runtimes.
func figure11(c config) {
	th := runtime.GOMAXPROCS(0)
	fmt.Printf("Figure 11: productive-time ratio at %d threads\n\n", th)
	t := stats.NewTable("size", "omp util", "task util")
	for _, size := range c.sizes {
		_, ompU, _ := measure(c, size, 11, th, "omp")
		_, taskU, _ := measure(c, size, 11, th, "task")
		t.AddRow(size, ompU, taskU)
	}
	emit(c, t)
}

// figureNaive reproduces the Section III observation: the prior
// hpx::for_each port performs significantly worse than the OpenMP
// reference, while the task-based approach beats it.
func figureNaive(c config) {
	th := runtime.GOMAXPROCS(0)
	fmt.Printf("Naive for_each port vs reference vs task backend at %d threads\n\n", th)
	t := stats.NewTable("size", "serial [s]", "naive [s]", "omp [s]", "task [s]")
	for _, size := range c.sizes {
		ser, _, _ := measure(c, size, 11, 1, "serial")
		nai, _, _ := measure(c, size, 11, th, "naive")
		omp, _, _ := measure(c, size, 11, th, "omp")
		task, _, _ := measure(c, size, 11, th, "task")
		t.AddRow(size, ser, nai, omp, task)
	}
	emit(c, t)
}

// tableI reproduces Table I: the partition-size tuning sweep. For each
// problem size it reports the runtime across partition sizes and marks the
// fastest.
func tableI(c config) {
	th := runtime.GOMAXPROCS(0)
	parts := []int{256, 512, 1024, 2048, 4096, 8192}
	fmt.Printf("Table I: task partition-size sweep at %d threads (runtime [s], * = best)\n\n", th)
	header := []string{"size"}
	for _, p := range parts {
		header = append(header, fmt.Sprintf("P=%d", p))
	}
	header = append(header, "best")
	t := stats.NewTable(header...)
	for _, size := range c.sizes {
		row := []interface{}{size}
		best, bestP := 1e300, 0
		times := make([]float64, len(parts))
		for i, p := range parts {
			d := buildDomain(c, size, 11)
			opt := core.DefaultOptions(size, th)
			opt.PartNodal = p
			opt.PartElem = p
			b := core.NewBackendTask(d, opt)
			res, err := core.Run(d, b, core.RunConfig{MaxIterations: c.iterCap(size)})
			b.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "tableI run failed: %v\n", err)
				os.Exit(1)
			}
			times[i] = res.Elapsed.Seconds()
			if times[i] < best {
				best, bestP = times[i], p
			}
		}
		for i := range parts {
			cell := fmt.Sprintf("%.4g", times[i])
			if parts[i] == bestP {
				cell += "*"
			}
			row = append(row, cell)
		}
		row = append(row, bestP)
		t.AddRow(row...)
	}
	emit(c, t)
}

// ablation isolates each technique of Section IV by disabling it while
// keeping the rest of the paper configuration.
func ablation(c config) {
	th := runtime.GOMAXPROCS(0)
	fmt.Printf("Ablation: runtime [s] with one technique disabled (at %d threads)\n\n", th)
	variants := []struct {
		name string
		mod  func(*core.Options)
	}{
		{"full (paper)", func(o *core.Options) {}},
		{"-chaining", func(o *core.Options) { o.Chain = false }},
		{"-fusion", func(o *core.Options) { o.Fuse = false }},
		{"-parallel forces", func(o *core.Options) { o.ParallelForces = false }},
		{"-parallel regions", func(o *core.Options) { o.ParallelRegions = false }},
		{"+priority LPT", func(o *core.Options) { o.PrioritizeHeavyRegions = true }},
	}
	header := []string{"size"}
	for _, v := range variants {
		header = append(header, v.name)
	}
	t := stats.NewTable(header...)
	for _, size := range c.sizes {
		row := []interface{}{size}
		for _, v := range variants {
			start := time.Now()
			d := buildDomain(c, size, 11)
			opt := core.DefaultOptions(size, th)
			v.mod(&opt)
			b := core.NewBackendTask(d, opt)
			if _, err := core.Run(d, b, core.RunConfig{MaxIterations: c.iterCap(size)}); err != nil {
				fmt.Fprintf(os.Stderr, "ablation run failed: %v\n", err)
				os.Exit(1)
			}
			b.Close()
			row = append(row, time.Since(start).Seconds())
		}
		t.AddRow(row...)
	}
	emit(c, t)
}

// locality ablates the locality-aware scheduling layer: affinity hints
// and steal-half off one at a time from the default configuration, plus
// the adaptive-grain extension on top. Next to the runtime it reports the
// scheduler-counter evidence: the idle rate, how many steal sweeps ran
// per task and how many frames each migrated, the fraction of hinted
// tasks that executed on their home worker, the per-worker busy-time
// imbalance, and the number of mid-run grain adjustments.
//
// Note that the affinity hit rate needs real parallelism to be
// meaningful: on a single CPU the one running worker legitimately steals
// everything the descheduled workers cannot execute, capping the rate
// near 1/threads no matter how frames were placed.
func locality(c config) {
	th := c.threads[len(c.threads)-1]
	fmt.Printf("Locality ablation at %d threads (FOM in z/s)\n\n", th)
	variants := []struct {
		name string
		mod  func(*core.Options)
	}{
		{"full (aff+steal-half)", func(o *core.Options) {}},
		{"-affinity", func(o *core.Options) { o.Affinity = false }},
		{"-steal half", func(o *core.Options) { o.StealHalf = false }},
		{"-both", func(o *core.Options) { o.Affinity = false; o.StealHalf = false }},
		{"+adaptive grain", func(o *core.Options) { o.AdaptiveGrain = true }},
	}
	t := stats.NewTable("size", "variant", "runtime [s]", "FOM", "idle",
		"steals/task", "frames/steal", "aff hits", "imbalance", "regrains")
	for _, size := range c.sizes {
		for _, v := range variants {
			var best *core.Result
			var row []interface{}
			for rep := 0; rep < c.reps; rep++ {
				d := buildDomain(c, size, 11)
				opt := core.DefaultOptions(size, th)
				v.mod(&opt)
				b := core.NewBackendTask(d, opt)
				res, err := core.Run(d, b, core.RunConfig{MaxIterations: c.iterCap(size)})
				if err != nil {
					fmt.Fprintf(os.Stderr, "locality run failed: %v\n", err)
					os.Exit(1)
				}
				if best == nil || res.Elapsed < best.Elapsed {
					best = &res
					ctr := b.Counters()
					busy := make([]float64, len(ctr.PerWorker))
					for i, dur := range ctr.PerWorker {
						busy[i] = dur.Seconds()
					}
					hits := "-"
					if rate, ok := ctr.AffinityHitRate(); ok {
						hits = fmt.Sprintf("%.1f%%", 100*rate)
					}
					row = []interface{}{size, v.name, res.Elapsed.Seconds(), res.FOM(),
						fmt.Sprintf("%.3f", 1-ctr.Utilization()),
						stats.Rate(ctr.Steals, ctr.Tasks), ctr.FramesPerSteal(),
						hits, stats.Imbalance(busy), b.GrainAdjustments()}
				}
				b.Close()
			}
			t.AddRow(row...)
		}
	}
	emit(c, t)
}

// figureDist runs the future-work experiment (Section VI): multi-domain
// LULESH with the synchronous MPI-style exchange versus the overlapped
// asynchronous schedule, on a fabric with simulated link latency.
func figureDist(c config) {
	const latency = 500 * time.Microsecond
	size := c.sizes[len(c.sizes)-1]
	iters := c.iterCap(size)
	fmt.Printf("Future work: multi-domain, %d^3 elems/rank, %d iterations, %v link latency\n\n",
		size, iters, latency)
	t := stats.NewTable("ranks", "sync [s]", "sync wait [s]", "async [s]",
		"async wait [s]", "speedup")
	for _, ranks := range []int{1, 2, 3, 4} {
		run := func(async bool) (float64, float64) {
			cfg := dist.DefaultConfig(size, ranks)
			cfg.Async = async
			cfg.Latency = latency
			cfg.MaxIterations = iters
			res, err := dist.Run(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dist run failed: %v\n", err)
				os.Exit(1)
			}
			maxWait := 0.0
			for _, rs := range res.Ranks {
				if w := rs.Comm.Wait.Seconds(); w > maxWait {
					maxWait = w
				}
			}
			return res.Elapsed.Seconds(), maxWait
		}
		syncSec, syncWait := run(false)
		asyncSec, asyncWait := run(true)
		t.AddRow(ranks, syncSec, syncWait, asyncSec, asyncWait, syncSec/asyncSec)
	}
	emit(c, t)
}

// schedules tests whether intra-loop dynamic scheduling lets the fork-join
// model catch the task backend. It cannot: LULESH's loops are internally
// uniform — the imbalance lives across loop and region boundaries, where a
// loop schedule has no leverage. (Section IV's motivation, quantified.)
func schedules(c config) {
	th := runtime.GOMAXPROCS(0)
	fmt.Printf("OpenMP loop schedules vs the task backend at %d threads\n\n", th)
	t := stats.NewTable("size", "static [s]", "dynamic [s]", "guided [s]", "task [s]")
	for _, size := range c.sizes {
		row := []interface{}{size}
		for _, sched := range []core.Schedule{core.ScheduleStatic,
			core.ScheduleDynamic, core.ScheduleGuided} {
			sched := sched
			var s stats.Sample
			for rep := 0; rep < c.reps; rep++ {
				d := buildDomain(c, size, 11)
				b := core.NewBackendOMPSchedule(d, th, sched)
				res, err := core.Run(d, b, core.RunConfig{MaxIterations: c.iterCap(size)})
				b.Close()
				if err != nil {
					fmt.Fprintf(os.Stderr, "schedules run failed: %v\n", err)
					os.Exit(1)
				}
				s.Add(res.Elapsed.Seconds())
			}
			row = append(row, s.Min())
		}
		task, _, _ := measure(c, size, 11, th, "task")
		row = append(row, task)
		t.AddRow(row...)
	}
	emit(c, t)
}

// sweep runs the full scenario grid — scenarios × sizes × threads ×
// backends — and prints one row per cell with the grind time (us per zone
// per cycle) and FOM (zones/s). With -record each cell also writes a
// BENCH_<n>.json; the committed baselines at the repo root were produced
// this way and are what -benchgate compares against.
func sweep(c config, scenarioSpecs, backends []string) {
	if len(scenarioSpecs) == 0 || len(backends) == 0 {
		fmt.Fprintln(os.Stderr, "sweep: -scenarios and -backends must be non-empty")
		os.Exit(2)
	}
	fmt.Printf("Scenario sweep: %s x sizes %v x threads %v x %s\n\n",
		strings.Join(scenarioSpecs, ","), c.sizes, c.threads, strings.Join(backends, ","))
	t := stats.NewTable("scenario", "backend", "size", "threads", "iters",
		"runtime [s]", "grind [us/z/c]", "FOM [z/s]")
	for _, raw := range scenarioSpecs {
		spec, err := domain.ParseScenarioSpec(raw)
		if err == nil {
			spec, err = domain.NormalizeScenarioSpec(spec)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(2)
		}
		cc := c
		cc.scenario = spec
		for _, size := range c.sizes {
			for _, th := range c.threads {
				for _, backend := range backends {
					best, _, _ := measureBest(cc, size, 11, th, backend)
					t.AddRow(spec.String(), backend, size, th, best.Iterations,
						best.Elapsed.Seconds(), grind(best), zps(best))
				}
			}
		}
	}
	emit(c, t)
}

// benchgate is the committed-trajectory regression gate: load the
// baseline BENCH_<n>.json records, re-measure exactly the configurations
// they pin (same scenario, backend, size, workers and iteration count),
// and fail — exit status 1 — if any configuration's grind time regressed
// by more than the tolerance. Cross-machine noise is absorbed by
// median-ratio normalization unless -gate-absolute is set (see
// internal/perf.Gate).
func benchgate(c config, dir string, tol float64, absolute bool) {
	baseline, err := perf.ReadBenchDir(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	if len(baseline) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no BENCH_<n>.json records in %s\n", dir)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchgate: %d baseline records from %s\n", len(baseline), dir)

	// The pinned subset: one measurement target per distinct baseline
	// configuration, re-run with the baseline's own iteration count.
	type target struct {
		rec     perf.BenchRecord
		spec    domain.ScenarioSpec
		regions int
	}
	seen := make(map[string]bool)
	var targets []target
	for _, rec := range baseline {
		key := rec.ConfigKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		spec, err := domain.ParseScenarioSpec(rec.Scenario)
		if err == nil {
			spec, err = domain.NormalizeScenarioSpec(spec)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: baseline %s: %v\n", key, err)
			os.Exit(1)
		}
		regions := rec.Regions
		if regions == 0 {
			regions = 11
		}
		targets = append(targets, target{rec: rec, spec: spec, regions: regions})
	}

	remeasure := func(tg target) perf.BenchRecord {
		cc := c
		cc.scenario = tg.spec
		cc.iters = tg.rec.Iterations // measure the same cycle count the baseline did
		cc.record = ""               // the gate measures, it does not append to the trajectory
		best, _, _ := measureBest(cc, tg.rec.Size, tg.regions, tg.rec.Workers, tg.rec.Backend)
		return perf.BenchRecord{
			Name: "benchgate", Scenario: tg.spec.String(),
			Backend: tg.rec.Backend, Workers: tg.rec.Workers,
			Size: tg.rec.Size, Regions: tg.regions, Iterations: best.Iterations,
			ElapsedSec: best.Elapsed.Seconds(), FOM: zps(best), GrindUsZC: grind(best),
		}
	}

	current := make(map[string]perf.BenchRecord, len(targets))
	for _, tg := range targets {
		fmt.Fprintf(os.Stderr, "benchgate: measuring %s (%d reps)\n", tg.rec.ConfigKey(), c.reps)
		current[tg.rec.ConfigKey()] = remeasure(tg)
	}

	// A failing config gets re-measured (keeping its best grind) before
	// the gate believes it: a contention spike on a shared machine goes
	// away on retry, a real regression does not.
	const maxRounds = 3
	var rep perf.GateReport
	for round := 1; ; round++ {
		recs := make([]perf.BenchRecord, 0, len(current))
		for _, r := range current {
			recs = append(recs, r)
		}
		rep, err = perf.Gate(baseline, recs, tol, absolute)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		if rep.Pass() || round == maxRounds {
			break
		}
		for _, e := range rep.Entries {
			if e.Pass {
				continue
			}
			for _, tg := range targets {
				if tg.rec.ConfigKey() != e.Key {
					continue
				}
				fmt.Fprintf(os.Stderr, "benchgate: retry %d for %s (norm ratio %.3f)\n",
					round, e.Key, e.NormalizedRatio)
				if r := remeasure(tg); r.GrindUsZC < current[e.Key].GrindUsZC {
					current[e.Key] = r
				}
			}
		}
	}

	fmt.Print(rep)
	if !rep.Pass() {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchgate: ok")
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
