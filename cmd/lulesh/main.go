// Command lulesh runs one LULESH Sedov problem under a selected parallel
// backend, mirroring the artifact CLI of the paper:
//
//	lulesh --s 45 --r 11 --i 100 --threads 24 --backend task --q
//
// At the end it prints a CSV-compatible result line with the header
// size,regions,iterations,threads,runtime,result — the format the paper's
// artifact-evaluation scripts consume.
//
// With -ranks N (N >= 1) the same binary runs the multi-domain driver
// instead: N simulated ranks stacked along z, optionally under injected
// communication faults (-faults, -fault-seed) with deadline/retry recovery
// (-exchange-deadline, -retry-limit) and checkpoint-based rank restart
// (-checkpoint-every, -max-restarts). See DISTRIBUTED.md for the protocol
// and worked invocations.
//
// With -np N the driver leaves the process: the binary becomes a launcher
// forking N copies of itself, one rank per OS process, exchanging over
// localhost TCP (internal/wire). Checkpoints become durable files
// (-checkpoint-dir), a SIGKILLed worker (-wire-kill RANK@STEP) triggers a
// fabric relaunch restoring from the last committed epoch, and each rank
// serves its own metrics endpoint (port base+rank, series labeled
// rank="N"). Workers can also be placed by hand across machines with
// -rank/-rendezvous. See DISTRIBUTED.md section 7.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"lulesh/internal/checkpoint"
	"lulesh/internal/comm"
	"lulesh/internal/core"
	"lulesh/internal/dist"
	"lulesh/internal/domain"
	"lulesh/internal/perf"
	"lulesh/internal/stats"
	"lulesh/internal/trace"
	"lulesh/internal/vtk"
)

func main() {
	var (
		size     = flag.Int("s", 30, "problem size (mesh elements per edge)")
		scenario = flag.String("scenario", "", "problem scenario: name[:key=val,...] of sedov | piston | multimat (\"\" = sedov)")
		regions  = flag.Int("r", 11, "number of material regions")
		iters    = flag.Int("i", 0, "maximum iterations (0 = run to stop time)")
		balance  = flag.Int("b", 1, "region size balance exponent")
		cost     = flag.Int("c", 1, "extra region cost multiplier")
		quiet    = flag.Bool("q", false, "suppress verbose output")
		threads  = flag.Int("threads", runtime.GOMAXPROCS(0), "execution threads")
		backend  = flag.String("backend", "task", "backend: serial | omp | naive | task")
		partN    = flag.Int("part-nodal", 0, "task partition size for node loops (0 = Table I default)")
		partE    = flag.Int("part-elem", 0, "task partition size for element loops (0 = Table I default)")
		priority = flag.Bool("priority-regions", false, "schedule expensive region chains at high priority (task backend)")
		affinity = flag.Bool("affinity", true, "locality-aware task placement: partition→worker affinity map (task backend)")
		stealH   = flag.Bool("steal-half", true, "idle workers steal half a victim's queue per sweep (task backend)")
		adaptive = flag.Bool("adaptive-grain", false, "idle-rate feedback controller resizes partition grain between timesteps (task backend)")
		tgtIdle  = flag.Float64("target-idle", 0, "idle-rate setpoint for -adaptive-grain (0 = default)")
		showCtr  = flag.Bool("counters", false, "print utilization counters")
		metrics  = flag.String("metrics-addr", "", "serve live Prometheus text, JSON snapshots and pprof on this address (e.g. :8080, :0 = ephemeral)")
		phases   = flag.Bool("phases", false, "record per-phase breakdowns and print the table at exit (implied by -metrics-addr)")
		traceOut = flag.String("trace", "", "write a Chrome trace of task/region spans to this file")
		profile  = flag.Bool("profile", false, "print per-phase wall times (serial backend only)")
		progress = flag.Bool("p", false, "print cycle/time/dt every iteration (reference -p)")
		vtkOut   = flag.String("vtk", "", "write the final state as a legacy VTK file")
		saveOut  = flag.String("save", "", "write a checkpoint of the final state to this file")
		restore  = flag.String("restore", "", "resume from a checkpoint file instead of a fresh Sedov setup")

		// Multi-domain (distributed) mode.
		ranks     = flag.Int("ranks", 0, "run the multi-domain driver with this many simulated ranks (0 = single-domain mode)")
		distAsync = flag.Bool("dist-async", false, "overlapped (asynchronous) exchange schedule instead of the synchronous one")
		treeRed   = flag.Bool("tree-reduce", false, "binomial-tree dt allreduce instead of the linear gather to rank 0")
		coalesce  = flag.Bool("coalesce", false, "coalesce each step's per-peer boundary slabs into one frame per (peer, direction)")
		latency   = flag.Duration("latency", 0, "deterministic one-way link latency injected into the fabric (in-process and wire)")
		faults    = flag.String("faults", "", "fault injection spec: drop=P,delay=P[:DUR],dup=P,reorder=P,crash=RANK@STEP")
		faultSeed = flag.Uint64("fault-seed", 1, "PRNG seed for -faults (a run is reproducible from spec+seed)")
		ckptEvery = flag.Int("checkpoint-every", 0, "take a coordinated checkpoint every N cycles (0 = none)")
		deadline  = flag.Duration("exchange-deadline", 0, "per-exchange deadline before a resend request (0 = default; enables the fault-tolerant fabric)")
		retryLim  = flag.Int("retry-limit", 0, "resend requests per exchange before declaring a peer dead (0 = default)")
		restarts  = flag.Int("max-restarts", 3, "restarts from the last checkpoint after a rank failure before giving up")

		// Multi-process (wire) mode.
		np          = flag.Int("np", 0, "fork this many worker processes and run the driver over localhost TCP")
		wireRank    = flag.Int("rank", -1, "this process's rank of a multi-process run (set by the -np launcher)")
		rendezvous  = flag.String("rendezvous", "", "rank 0's bootstrap address for a multi-process run")
		wireCookie  = flag.String("wire-cookie", "", "shared handshake secret of a multi-process run (set by the -np launcher)")
		wireAttempt = flag.Int("wire-attempt", 0, "fabric relaunch count (set by the -np launcher)")
		ckptDir     = flag.String("checkpoint-dir", "", "directory for durable coordinated checkpoints in multi-process mode")
		wireKill    = flag.String("wire-kill", "", "chaos: RANK@STEP makes that worker SIGKILL itself at that cycle (multi-process mode)")
		peerTimeout = flag.Duration("peer-timeout", 0, "wire silence budget before declaring a peer process dead (0 = default)")
		fleetOut    = flag.String("fleet-out", "", "write the gathered fleet trace snapshot as JSON (distributed modes; rank 0 of a wire run)")
	)
	flag.Parse()

	spec, err := domain.ParseScenarioSpec(*scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
		os.Exit(2)
	}
	if err := domain.ValidateScenarioSpec(spec); err != nil {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
		os.Exit(2)
	}
	scenarioSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "scenario" {
			scenarioSet = true
		}
	})

	if *wireRank >= 0 {
		// Worker process of a multi-process run (forked by the -np
		// launcher, or hand-started against an explicit -rendezvous).
		threadsPerRank := 1
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "threads" {
				threadsPerRank = *threads
			}
		})
		if *ranks < 1 {
			fmt.Fprintln(os.Stderr, "-rank requires -ranks (the fabric size)")
			os.Exit(2)
		}
		runWireWorker(wireFlags{
			distFlags: distFlags{
				size: *size, regions: *regions, iters: *iters,
				balance: *balance, cost: *cost, quiet: *quiet,
				threads: threadsPerRank, metrics: *metrics,
				trace: *traceOut, fleetOut: *fleetOut,
				ranks: *ranks, async: *distAsync, scenario: spec,
				treeReduce: *treeRed, coalesce: *coalesce, latency: *latency,
				faults: *faults, faultSeed: *faultSeed,
				checkpointEvery: *ckptEvery, deadline: *deadline,
				retryLimit: *retryLim,
			},
			rank: *wireRank, rendezvous: *rendezvous,
			cookie: *wireCookie, attempt: *wireAttempt,
			checkpointDir: *ckptDir, wireKill: *wireKill,
			peerTimeout: *peerTimeout,
		})
		return
	}
	if *np > 0 {
		runLauncher(*np, *restarts, *ckptEvery, *ckptDir, *quiet)
		return
	}

	if *ranks > 0 {
		// Hybrid MPI+X only when -threads was given explicitly: the
		// single-domain default (GOMAXPROCS) would silently oversubscribe
		// every rank with a full team.
		threadsPerRank := 1
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "threads" {
				threadsPerRank = *threads
			}
		})
		runDist(distFlags{
			size: *size, regions: *regions, iters: *iters,
			balance: *balance, cost: *cost, quiet: *quiet,
			threads: threadsPerRank, metrics: *metrics,
			trace: *traceOut, fleetOut: *fleetOut,
			ranks: *ranks, async: *distAsync, scenario: spec, latency: *latency,
			treeReduce: *treeRed, coalesce: *coalesce,
			faults: *faults, faultSeed: *faultSeed,
			checkpointEvery: *ckptEvery, deadline: *deadline,
			retryLimit: *retryLim, maxRestarts: *restarts,
		})
		return
	}

	domCfg := domain.Config{
		EdgeElems: *size, NumReg: *regions, Balance: *balance, Cost: *cost,
	}
	var d *domain.Domain
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			fmt.Fprintf(os.Stderr, "restore: %v\n", err)
			os.Exit(1)
		}
		d, err = checkpoint.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "restore: %v\n", err)
			os.Exit(1)
		}
		// An explicit -scenario must match the checkpoint's tag; without
		// one the run adopts whatever scenario the checkpoint was taken
		// under.
		if scenarioSet {
			if err := checkpoint.ExpectScenario(d, spec); err != nil {
				fmt.Fprintf(os.Stderr, "restore: %v\n", err)
				os.Exit(1)
			}
		}
		spec = d.Scenario
		*size = d.Mesh.EdgeElems
		domCfg = domain.Config{EdgeElems: d.Mesh.Nx, NumReg: d.Regions.NumReg,
			Balance: d.Regions.Balance, Cost: d.Regions.Cost}
	} else {
		d, err = domain.BuildScenarioCube(spec, domCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(2)
		}
	}

	var b core.Backend
	switch *backend {
	case "serial":
		b = core.NewBackendSerial(d)
	case "omp":
		b = core.NewBackendOMP(d, *threads)
	case "naive":
		b = core.NewBackendNaive(d, *threads)
	case "task":
		opt := core.DefaultOptions(*size, *threads)
		if *partN > 0 {
			opt.PartNodal = *partN
		}
		if *partE > 0 {
			opt.PartElem = *partE
		}
		opt.PrioritizeHeavyRegions = *priority
		opt.Affinity = *affinity
		opt.StealHalf = *stealH
		opt.AdaptiveGrain = *adaptive
		opt.TargetIdle = *tgtIdle
		b = core.NewBackendTask(d, opt)
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backend)
		os.Exit(2)
	}
	defer b.Close()

	// The perf profiler powers the live -metrics-addr endpoint and the
	// per-phase table at exit; combined with -trace it also supplies
	// phase-labeled spans for the Figure 11 timelines.
	var prof *perf.Profiler
	if *metrics != "" {
		*phases = true
	}
	if *phases {
		pb, ok := b.(core.PhaseProfiled)
		if !ok {
			fmt.Fprintf(os.Stderr, "backend %s does not support phase profiling\n", *backend)
			os.Exit(2)
		}
		ringCap := 0
		if *traceOut != "" {
			ringCap = 1 << 16 // raw spans feed the Chrome trace
		}
		prof = perf.NewProfiler(*threads, ringCap)
		pb.SetProfiler(prof)
	}

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder(0)
		if prof != nil {
			// Spans come phase-labeled from the profiler rings, drained
			// once per timestep by the Progress hook below.
		} else if src, ok := b.(core.TraceSource); ok {
			src.SetObserver(func(worker int, start time.Time, dur time.Duration) {
				rec.Record(*backend, worker, start, dur)
			})
		} else {
			fmt.Fprintf(os.Stderr, "backend %s does not support tracing\n", *backend)
			os.Exit(2)
		}
	}

	var srv *perf.Server
	if *metrics != "" {
		extra := func() map[string]float64 {
			g := map[string]float64{}
			if tb, ok := b.(*core.BackendTask); ok {
				c := tb.Counters()
				g["amt utilization"] = c.Utilization()
				g["amt steals total"] = float64(c.Steals)
				g["amt parks total"] = float64(c.Parks)
				if rate, ok := c.AffinityHitRate(); ok {
					g["amt affinity hit rate"] = rate
				}
			} else if u, ok := b.Utilization(); ok {
				g["backend utilization"] = u
			}
			return g
		}
		var err error
		srv, err = perf.StartServer(*metrics, prof, extra)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics (JSON at /metrics.json, pprof at /debug/pprof/)\n", srv.Addr)
	}
	if *profile {
		if sb, ok := b.(*core.BackendSerial); ok {
			sb.EnableProfiling()
		} else {
			fmt.Fprintln(os.Stderr, "-profile requires -backend serial")
			os.Exit(2)
		}
	}

	if !*quiet {
		fmt.Printf("Running scenario %s, problem size %d^3 per domain, %d regions, backend %s, %d threads\n",
			spec.String(), *size, *regions, b.Name(), *threads)
	}

	runCfg := core.RunConfig{MaxIterations: *iters}
	if *progress {
		runCfg.Progress = func(cycle int, t, dt float64) {
			fmt.Printf("cycle = %d, time = %e, dt=%e\n", cycle, t, dt)
		}
	}
	// Close each timestep's per-phase accounting window, and move any raw
	// spans out of the profiler rings while they are fresh — a once-per-step
	// drain keeps the rings from overflowing on long runs.
	if prof != nil {
		prev := runCfg.Progress
		runCfg.Progress = func(cycle int, t, dt float64) {
			if prev != nil {
				prev(cycle, t, dt)
			}
			prof.MarkStep(cycle)
			if rec != nil {
				prof.DrainSpans(rec)
			}
		}
	}
	// With both tracing and the task backend active, sample the scheduler's
	// locality counters once per timestep: they appear as Chrome "C" value
	// tracks above the worker timelines, the idle gaps' quantified twin.
	if rec != nil {
		if tb, ok := b.(*core.BackendTask); ok {
			prev := runCfg.Progress
			runCfg.Progress = func(cycle int, t, dt float64) {
				if prev != nil {
					prev(cycle, t, dt)
				}
				c := tb.Counters()
				now := time.Now()
				rec.RecordCounter("idle rate", now, 1-c.Utilization())
				if rate, ok := c.AffinityHitRate(); ok {
					rec.RecordCounter("affinity hit rate", now, rate)
				}
			}
		}
	}
	res, err := core.Run(d, b, runCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "run failed: %v\n", err)
		os.Exit(1)
	}

	if !*quiet {
		fmt.Printf("Run completed:\n")
		fmt.Printf("  Problem size          = %d\n", res.Size)
		fmt.Printf("  Iteration count       = %d\n", res.Iterations)
		fmt.Printf("  Final simulation time = %.6e\n", res.FinalTime)
		fmt.Printf("  Final origin energy   = %.6e\n", res.OriginEnergy)
		fmt.Printf("  Elapsed time          = %v\n", res.Elapsed)
		fmt.Printf("  FOM                   = %.2f (z/s)\n", res.FOM())
		if res.HasUtil {
			fmt.Printf("  Worker utilization    = %.1f%%\n", 100*res.Utilization)
		}
	}
	if *showCtr && res.HasUtil {
		fmt.Printf("utilization=%.4f\n", res.Utilization)
	}
	if *showCtr {
		if tb, ok := b.(*core.BackendTask); ok {
			c := tb.Counters()
			busy := make([]float64, len(c.PerWorker))
			for i, d := range c.PerWorker {
				busy[i] = d.Seconds()
			}
			fmt.Printf("steals_per_task=%.4f frames_per_steal=%.2f busy_imbalance=%.3f\n",
				stats.Rate(c.Steals, c.Tasks), c.FramesPerSteal(), stats.Imbalance(busy))
			if rate, ok := c.AffinityHitRate(); ok {
				fmt.Printf("affinity_hit_rate=%.4f\n", rate)
			}
			if tb.Options().AdaptiveGrain {
				opt := tb.Options()
				fmt.Printf("grain_adjustments=%d part_elem=%d part_nodal=%d\n",
					tb.GrainAdjustments(), opt.PartElem, opt.PartNodal)
			}
		}
	}
	if prof != nil {
		if rec != nil {
			prof.DrainSpans(rec) // pick up the tail past the last Progress call
		}
		snap := prof.Snapshot()
		fmt.Printf("\nPer-phase breakdown (%s backend, %d workers, utilization %.1f%%):\n",
			b.Name(), snap.Workers, 100*snap.Utilization())
		if err := snap.Table().Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "phase table: %v\n", err)
		}
		if snap.SpanDrops > 0 {
			fmt.Printf("(span ring dropped %d raw spans; aggregates unaffected)\n", snap.SpanDrops)
		}
	}
	if rec != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		if !*quiet {
			fmt.Printf("wrote %d spans to %s\n", rec.Len(), *traceOut)
		}
	}
	if *profile {
		sb := b.(*core.BackendSerial)
		fmt.Println("\nPer-phase wall time:")
		total := time.Duration(0)
		for _, ph := range sb.Profile() {
			total += ph.Total
		}
		for _, ph := range sb.Profile() {
			fmt.Printf("  %-16s %12v  %5.1f%%\n", ph.Name, ph.Total,
				100*float64(ph.Total)/float64(total))
		}
	}
	if *saveOut != "" {
		f, err := os.Create(*saveOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "save: %v\n", err)
			os.Exit(1)
		}
		if err := checkpoint.SaveCube(f, d, domCfg); err != nil {
			fmt.Fprintf(os.Stderr, "save: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		if !*quiet {
			fmt.Printf("wrote checkpoint to %s (cycle %d)\n", *saveOut, d.Cycle)
		}
	}
	if *vtkOut != "" {
		f, err := os.Create(*vtkOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vtk: %v\n", err)
			os.Exit(1)
		}
		if err := vtk.Write(f, d); err != nil {
			fmt.Fprintf(os.Stderr, "vtk: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		if !*quiet {
			fmt.Printf("wrote VTK snapshot to %s\n", *vtkOut)
		}
	}
	fmt.Println(core.CSVHeader())
	fmt.Println(res.CSVLine())
}

// distFlags carries the parsed command line into the multi-domain driver.
type distFlags struct {
	size, regions, iters   int
	balance, cost, threads int
	quiet                  bool
	metrics                string
	scenario               domain.ScenarioSpec

	// Distributed tracing outputs: trace is the merged Chrome trace
	// (rank 0), fleetOut the raw fleet snapshot JSON — either one (or a
	// live metrics endpoint) switches tracing on.
	trace    string
	fleetOut string

	ranks           int
	async           bool
	treeReduce      bool
	coalesce        bool
	latency         time.Duration
	faults          string
	faultSeed       uint64
	checkpointEvery int
	deadline        time.Duration
	retryLimit      int
	maxRestarts     int
}

// runDist executes the multi-domain mode: N simulated ranks, optional fault
// injection, deadline/retry recovery, and checkpoint-based restart.
func runDist(f distFlags) {
	cfg := dist.Config{
		Nx: f.size, Ny: f.size, NzPerRank: f.size, Ranks: f.ranks,
		NumReg: f.regions, Balance: f.balance, Cost: f.cost,
		Scenario: f.scenario,
		Async:    f.async, ThreadsPerRank: f.threads,
		TreeReduce: f.treeReduce, Coalesce: f.coalesce,
		Latency: f.latency, MaxIterations: f.iters,
		ExchangeDeadline: f.deadline, RetryLimit: f.retryLimit,
		CheckpointEvery: f.checkpointEvery, MaxRestarts: f.maxRestarts,
	}
	if f.faults != "" {
		plan, err := comm.ParseFaultPlan(f.faults, f.faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faults: %v\n", err)
			os.Exit(2)
		}
		cfg.Faults = plan
	}

	// Tracing: per-step compute/wait attribution and message spans,
	// mirrored into a profiler (one shard per rank) so the breakdown
	// also serves on the live metrics endpoint.
	var prof *perf.Profiler
	if f.traceOn() {
		cfg.Trace = true
		prof = perf.NewProfiler(f.ranks, 0)
		perf.RegisterDistPhases(prof)
		cfg.Profiler = prof
	}

	// The metrics endpoint serves the fault-tolerance counters live:
	// lulesh_comm_retries_total, lulesh_comm_timeouts_total,
	// lulesh_comm_recoveries_total, lulesh_comm_checkpoints_total, ...
	if f.metrics != "" {
		mon := &dist.Monitor{}
		cfg.Monitor = mon
		srv, err := perf.StartServer(f.metrics, prof, mon.Gauges)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", srv.Addr)
	}

	sched := f.scheduleLabel()
	if !f.quiet {
		fmt.Printf("Running %d ranks x %d^3 (%s exchange, %d threads/rank)\n",
			f.ranks, f.size, sched, f.threads)
		if f.latency > 0 {
			fmt.Printf("  injected link latency: %v one-way\n", f.latency)
		}
		if cfg.Faults.Active() {
			fmt.Printf("  fault plan: %q seed %d\n", f.faults, f.faultSeed)
		}
		if f.checkpointEvery > 0 {
			fmt.Printf("  coordinated checkpoints every %d cycles, up to %d restarts\n",
				f.checkpointEvery, f.maxRestarts)
		}
	}

	res, err := dist.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "run failed: %v\n", err)
		os.Exit(1)
	}

	if !f.quiet {
		fmt.Printf("Run completed:\n")
		fmt.Printf("  Iteration count       = %d\n", res.Iterations)
		fmt.Printf("  Final simulation time = %.6e\n", res.FinalTime)
		fmt.Printf("  Final origin energy   = %.6e\n", res.OriginEnergy)
		fmt.Printf("  Total energy          = %.6e\n", res.TotalEnergy)
		fmt.Printf("  Elapsed time          = %v\n", res.Elapsed)
		if res.Recoveries > 0 || res.Checkpoints > 0 {
			fmt.Printf("  Recoveries            = %d\n", res.Recoveries)
			fmt.Printf("  Checkpoints committed = %d\n", res.Checkpoints)
		}
		fs := res.Fabric
		if fs.Retries+fs.Timeouts+fs.Injected.Dropped+fs.Injected.Delayed+
			fs.Injected.Duplicated+fs.Injected.Reordered > 0 {
			fmt.Printf("  Fabric: %d retries, %d timeouts, %d resends served, %d dups filtered\n",
				fs.Retries, fs.Timeouts, fs.ResendsServed, fs.DuplicatesDropped)
			fmt.Printf("  Injected: %d dropped, %d delayed, %d duplicated, %d reordered\n",
				fs.Injected.Dropped, fs.Injected.Delayed,
				fs.Injected.Duplicated, fs.Injected.Reordered)
		}
		fmt.Printf("  %-6s %12s %10s %10s %8s %8s\n",
			"rank", "step time", "comm wait", "sent", "retries", "timeouts")
		for _, rs := range res.Ranks {
			fmt.Printf("  %-6d %12v %10v %10d %8d %8d\n",
				rs.Rank, rs.StepTime.Round(time.Microsecond),
				rs.Comm.Wait.Round(time.Microsecond),
				rs.Comm.Sent, rs.Comm.Retries, rs.Comm.Timeouts)
		}
	}
	if prof != nil && !f.quiet {
		printDistPhases(prof, f.ranks)
	}
	writeFleetArtifacts(f, res.Fleet)
	fmt.Println("size,ranks,schedule,iterations,runtime,origin_energy,recoveries")
	fmt.Printf("%d,%d,%s,%d,%.6f,%.6e,%d\n",
		f.size, f.ranks, sched, res.Iterations,
		res.Elapsed.Seconds(), res.OriginEnergy, res.Recoveries)
}

// scheduleLabel names the exchange schedule with its overlap toggles —
// the same string the wire handshake embeds in its geometry, so mixed
// fabrics are refused at Join.
func (f distFlags) scheduleLabel() string {
	s := "sync"
	if f.async {
		s = "async"
	}
	if f.treeReduce {
		s += "+tree"
	}
	if f.coalesce {
		s += "+coalesce"
	}
	return s
}

// traceOn reports whether the distributed run should record traces: any
// trace or fleet output file, or a live metrics endpoint (the
// attribution phases serve there).
func (f distFlags) traceOn() bool {
	return f.trace != "" || f.fleetOut != "" || f.metrics != ""
}

// printDistPhases renders the step-time attribution table: the
// compute / ghost-wait / allreduce-wait / steal-idle split, one profiler
// shard per rank.
func printDistPhases(prof *perf.Profiler, ranks int) {
	snap := prof.Snapshot()
	fmt.Printf("\nStep-time attribution (%d ranks):\n", ranks)
	if err := snap.Table().Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "phase table: %v\n", err)
	}
}

// writeFleetArtifacts renders the traced run's outputs from the gathered
// fleet snapshot: the stall report, the raw snapshot JSON (the
// luleshbench -stall-report input), and the merged Chrome trace with one
// process row per rank and flow arrows on cross-rank sends.
func writeFleetArtifacts(f distFlags, fleet *perf.FleetSnapshot) {
	if fleet == nil {
		return
	}
	if !f.quiet {
		fmt.Println()
		perf.BuildStallReport(fleet).WriteText(os.Stdout)
	}
	if f.fleetOut != "" {
		fo, err := os.Create(f.fleetOut)
		if err == nil {
			err = fleet.WriteJSON(fo)
			if cerr := fo.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet-out: %v\n", err)
			os.Exit(1)
		}
		if !f.quiet {
			fmt.Printf("wrote fleet snapshot to %s\n", f.fleetOut)
		}
	}
	if f.trace != "" {
		rec, st := fleet.Merge()
		tf, err := os.Create(f.trace)
		if err == nil {
			err = rec.WriteChromeTrace(tf)
			if cerr := tf.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		if !f.quiet {
			fmt.Printf("wrote merged trace to %s (%d flow arrows, %d unmatched sends, %d unmatched recvs, %d dead ranks)\n",
				f.trace, st.Flows, st.UnmatchedSends, st.UnmatchedRecvs, st.DeadRanks)
		}
	}
}
