package main

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"lulesh/internal/comm"
	"lulesh/internal/dist"
	"lulesh/internal/perf"
	"lulesh/internal/wire"
)

// Multi-process mode: -np N makes this binary a launcher that forks N
// copies of itself as rank workers over localhost TCP; the workers are
// invoked with the internal -rank/-rendezvous/-wire-cookie/-wire-attempt
// flags appended to the user's own arguments (later flags win), so every
// physics and fault knob passes through unchanged.

// wireFlags carries the parsed command line into one worker process.
type wireFlags struct {
	distFlags

	rank          int
	rendezvous    string
	cookie        string
	attempt       int
	checkpointDir string
	wireKill      string
	peerTimeout   time.Duration
}

// runLauncher forks the worker fabric and supervises it: a worker that
// exits wire.ExitRecoverable (or dies by signal) triggers a full
// relaunch, every rank restoring from the shared checkpoint directory.
func runLauncher(np, maxRestarts, ckptEvery int, ckptDir string, quiet bool) {
	bin, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "launch: %v\n", err)
		os.Exit(1)
	}
	cookie := wire.Cookie()
	dir := ckptDir
	cleanup := false
	if ckptEvery > 0 && dir == "" {
		dir, err = os.MkdirTemp("", "lulesh-wire-ckpt-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "launch: checkpoint dir: %v\n", err)
			os.Exit(1)
		}
		cleanup = true
	}
	base := os.Args[1:]
	spec := wire.LaunchSpec{
		NP:          np,
		Binary:      bin,
		MaxRestarts: maxRestarts,
		Args: func(rank, attempt int, rendezvous string) []string {
			args := append([]string(nil), base...)
			return append(args,
				"-np", "0",
				"-ranks", strconv.Itoa(np),
				"-rank", strconv.Itoa(rank),
				"-rendezvous", rendezvous,
				"-wire-cookie", cookie,
				"-wire-attempt", strconv.Itoa(attempt),
				"-checkpoint-dir", dir,
			)
		},
	}
	if !quiet {
		fmt.Printf("Launching %d worker processes over localhost TCP\n", np)
	}
	if err := wire.Launch(spec); err != nil {
		fmt.Fprintf(os.Stderr, "launch: %v\n", err)
		os.Exit(1)
	}
	if cleanup {
		os.RemoveAll(dir)
	}
}

// runWireWorker executes this process's single rank of a multi-process
// run. Only rank 0 prints the summary and CSV line; a recoverable
// failure exits wire.ExitRecoverable so the launcher relaunches the
// fabric.
func runWireWorker(f wireFlags) {
	cfg := dist.Config{
		Nx: f.size, Ny: f.size, NzPerRank: f.size, Ranks: f.ranks,
		NumReg: f.regions, Balance: f.balance, Cost: f.cost,
		Scenario: f.scenario,
		Async:    f.async, ThreadsPerRank: f.threads,
		TreeReduce: f.treeReduce, Coalesce: f.coalesce,
		Latency:          f.latency,
		MaxIterations:    f.iters,
		ExchangeDeadline: f.deadline, RetryLimit: f.retryLimit,
		CheckpointEvery: f.checkpointEvery,
	}
	if f.faults != "" {
		plan, err := comm.ParseFaultPlan(f.faults, f.faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faults: %v\n", err)
			os.Exit(2)
		}
		cfg.Faults = plan
	}

	// Tracing: the wire layer records the message spans (it owns the
	// header clock); the per-process profiler carries this rank's
	// attribution buckets onto its metrics endpoint.
	var prof *perf.Profiler
	if f.traceOn() {
		cfg.Trace = true
		prof = perf.NewProfiler(1, 0)
		perf.RegisterDistPhases(prof)
		cfg.Profiler = prof
	}

	if f.metrics != "" {
		mon := &dist.Monitor{}
		cfg.Monitor = mon
		// Per-rank ports: base+rank, so eight workers don't fight over
		// one socket; the rank label keeps the scraped series apart.
		srv, err := perf.StartServer(rankAddr(f.metrics, f.rank), prof, mon.Gauges)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rank %d: metrics: %v\n", f.rank, err)
			os.Exit(1)
		}
		srv.SetLabels(map[string]string{"rank": strconv.Itoa(f.rank)})
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rank %d: serving metrics on http://%s/metrics\n", f.rank, srv.Addr)
		// Rank 0 additionally merges every rank's endpoint into one
		// fleet-level Prometheus page (needs fixed ports to find peers).
		if f.rank == 0 && f.ranks > 1 {
			if peers := fleetPeers(f.metrics, f.ranks); peers != nil {
				srv.EnableFleet(peers)
				fmt.Fprintf(os.Stderr, "rank 0: fleet metrics on http://%s/fleet/metrics\n", srv.Addr)
			}
		}
	}

	w := dist.WireOptions{
		Rank:          f.rank,
		Rendezvous:    f.rendezvous,
		Cookie:        f.cookie,
		CheckpointDir: f.checkpointDir,
		AttemptsTaken: f.attempt,
		PeerTimeout:   f.peerTimeout,
	}
	if killRank, killStep, ok := parseKill(f.wireKill); ok && killRank == f.rank {
		w.KillAtStep = killStep
	}

	if f.rank == 0 && !f.quiet {
		fmt.Printf("Running %d worker processes x %d^3 over TCP (%s exchange, %d threads/rank)\n",
			f.ranks, f.size, f.scheduleLabel(), f.threads)
		if f.latency > 0 {
			fmt.Printf("  injected link latency: %v one-way\n", f.latency)
		}
		if cfg.Faults.Active() {
			fmt.Printf("  fault plan: %q seed %d\n", f.faults, f.faultSeed)
		}
		if f.checkpointEvery > 0 && f.checkpointDir != "" {
			fmt.Printf("  durable checkpoints every %d cycles in %s\n",
				f.checkpointEvery, f.checkpointDir)
		}
	}

	res, err := dist.RunWire(cfg, w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rank %d: %v\n", f.rank, err)
		if dist.Recoverable(err) {
			os.Exit(wire.ExitRecoverable)
		}
		os.Exit(1)
	}

	if f.rank != 0 {
		return
	}
	sched := f.scheduleLabel()
	if !f.quiet {
		fmt.Printf("Run completed:\n")
		fmt.Printf("  Iteration count       = %d\n", res.Iterations)
		fmt.Printf("  Final simulation time = %.6e\n", res.FinalTime)
		fmt.Printf("  Final origin energy   = %.6e\n", res.OriginEnergy)
		fmt.Printf("  Total energy          = %.6e\n", res.TotalEnergy)
		fmt.Printf("  Elapsed time          = %v\n", res.Elapsed)
		if res.Recoveries > 0 || res.Checkpoints > 0 {
			fmt.Printf("  Recoveries            = %d\n", res.Recoveries)
			fmt.Printf("  Checkpoints filed     = %d\n", res.Checkpoints)
		}
		rs := res.Ranks[0]
		fmt.Printf("  rank 0: step time %v, comm wait %v, %d sent, %d retries\n",
			rs.StepTime.Round(time.Microsecond), rs.Comm.Wait.Round(time.Microsecond),
			rs.Comm.Sent, rs.Comm.Retries)
	}
	if prof != nil && !f.quiet {
		printDistPhases(prof, 1)
	}
	writeFleetArtifacts(f.distFlags, res.Fleet)
	fmt.Println("size,ranks,schedule,iterations,runtime,origin_energy,recoveries")
	fmt.Printf("%d,%d,%s,%d,%.6f,%.6e,%d\n",
		f.size, f.ranks, sched, res.Iterations,
		res.Elapsed.Seconds(), res.OriginEnergy, res.Recoveries)
}

// rankAddr derives a per-rank listen address from a base one: the port
// shifts by the rank (":8080" → ":8083" on rank 3). Port 0 stays 0 —
// the kernel already hands every rank its own.
func rankAddr(addr string, rank int) string {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port == 0 {
		return addr
	}
	return net.JoinHostPort(host, strconv.Itoa(port+rank))
}

// fleetPeers builds rank 0's scrape list for /fleet/metrics: every other
// rank's per-rank metrics address. Nil when the base address has no
// fixed port — ephemeral ports land each rank somewhere unknowable.
func fleetPeers(base string, ranks int) func() []string {
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return nil
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port == 0 {
		return nil
	}
	if host == "" {
		host = "127.0.0.1"
	}
	peers := make([]string, 0, ranks-1)
	for r := 1; r < ranks; r++ {
		peers = append(peers, net.JoinHostPort(host, strconv.Itoa(port+r)))
	}
	return func() []string { return peers }
}

// parseKill parses the -wire-kill chaos spec RANK@STEP.
func parseKill(spec string) (rank, step int, ok bool) {
	if spec == "" {
		return 0, 0, false
	}
	rs, ss, found := strings.Cut(spec, "@")
	if !found {
		fmt.Fprintf(os.Stderr, "wire-kill: want RANK@STEP, got %q\n", spec)
		os.Exit(2)
	}
	r, err1 := strconv.Atoi(rs)
	s, err2 := strconv.Atoi(ss)
	if err1 != nil || err2 != nil || r < 0 || s < 1 {
		fmt.Fprintf(os.Stderr, "wire-kill: want RANK@STEP with step >= 1, got %q\n", spec)
		os.Exit(2)
	}
	return r, s, true
}
