// Package lulesh_test hosts the benchmark harness that regenerates the
// evaluation of "Speeding-Up LULESH on HPX" (SC 2024) as testing.B
// benchmarks — one benchmark family per paper table or figure, at sizes
// scaled for CI-class machines. The cmd/luleshbench binary produces the
// full tables; these benches give the same comparisons in `go test -bench`
// form, with ns/op measuring one leapfrog iteration.
//
//	Figure 9  → BenchmarkFigure9_*   (runtime vs backend and thread count)
//	Figure 10 → BenchmarkFigure10_*  (region-count sensitivity)
//	Figure 11 → BenchmarkFigure11_*  (utilization, reported as util metric)
//	Table I   → BenchmarkTableI_*    (partition-size sweep)
//	§III      → BenchmarkNaive_*     (the prior for_each port)
//	§IV       → BenchmarkAblation_*  (technique ablations)
package lulesh_test

import (
	"fmt"
	"runtime"
	"testing"

	"lulesh/internal/core"
	"lulesh/internal/dist"
	"lulesh/internal/domain"
)

// benchSizes are the problem sizes exercised by the benchmarks; the
// paper's sweep {45..150} is impractical per-op on small machines, and the
// crossover phenomena appear at these sizes already.
var benchSizes = []int{8, 12, 16}

// stepper drives leapfrog iterations for benchmarking, transparently
// recreating the domain when a run approaches its stop time so ns/op stays
// a per-iteration quantity.
type stepper struct {
	cfg domain.Config
	mk  func(*domain.Domain) core.Backend
	d   *domain.Domain
	bk  core.Backend
}

func newStepper(cfg domain.Config, mk func(*domain.Domain) core.Backend) *stepper {
	s := &stepper{cfg: cfg, mk: mk}
	s.reset()
	return s
}

func (s *stepper) reset() {
	if s.bk != nil {
		s.bk.Close()
	}
	s.d = domain.NewSedov(s.cfg)
	s.bk = s.mk(s.d)
}

func (s *stepper) close() { s.bk.Close() }

func (s *stepper) step(b *testing.B) {
	if s.d.Time >= 0.9*s.d.Par.StopTime {
		b.StopTimer()
		s.reset()
		b.StartTimer()
	}
	core.TimeIncrement(s.d)
	if err := s.bk.Step(s.d); err != nil {
		b.Fatal(err)
	}
}

func benchBackend(b *testing.B, cfg domain.Config, mk func(*domain.Domain) core.Backend) {
	s := newStepper(cfg, mk)
	defer s.close()
	// Warm the dt ramp so per-iteration cost is representative.
	for i := 0; i < 3; i++ {
		core.TimeIncrement(s.d)
		if err := s.bk.Step(s.d); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(b)
	}
	b.StopTimer()
	if u, ok := s.bk.Utilization(); ok {
		b.ReportMetric(u, "util")
	}
}

func threadsList() []int {
	cores := runtime.GOMAXPROCS(0)
	ts := []int{1}
	for t := 2; t < cores; t *= 2 {
		ts = append(ts, t)
	}
	if cores > 1 {
		ts = append(ts, cores)
	}
	ts = append(ts, 2*cores)
	return ts
}

// BenchmarkFigure9_Serial is the single-thread baseline of Figure 9.
func BenchmarkFigure9_Serial(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("s%d", size), func(b *testing.B) {
			benchBackend(b, domain.DefaultConfig(size),
				func(d *domain.Domain) core.Backend { return core.NewBackendSerial(d) })
		})
	}
}

// BenchmarkFigure9_OMP sweeps the fork-join reference over thread counts.
func BenchmarkFigure9_OMP(b *testing.B) {
	for _, size := range benchSizes {
		for _, th := range threadsList() {
			th := th
			b.Run(fmt.Sprintf("s%d/t%d", size, th), func(b *testing.B) {
				benchBackend(b, domain.DefaultConfig(size),
					func(d *domain.Domain) core.Backend { return core.NewBackendOMP(d, th) })
			})
		}
	}
}

// BenchmarkFigure9_Task sweeps the many-task backend over thread counts.
func BenchmarkFigure9_Task(b *testing.B) {
	for _, size := range benchSizes {
		for _, th := range threadsList() {
			size, th := size, th
			b.Run(fmt.Sprintf("s%d/t%d", size, th), func(b *testing.B) {
				benchBackend(b, domain.DefaultConfig(size),
					func(d *domain.Domain) core.Backend {
						return core.NewBackendTask(d, core.DefaultOptions(size, th))
					})
			})
		}
	}
}

// BenchmarkFigure10 varies the region count at the core-count thread
// level for both compared implementations.
func BenchmarkFigure10(b *testing.B) {
	th := runtime.GOMAXPROCS(0)
	const size = 12
	for _, nr := range []int{11, 16, 21} {
		nr := nr
		cfg := domain.Config{EdgeElems: size, NumReg: nr, Balance: 1, Cost: 1}
		b.Run(fmt.Sprintf("r%d/omp", nr), func(b *testing.B) {
			benchBackend(b, cfg,
				func(d *domain.Domain) core.Backend { return core.NewBackendOMP(d, th) })
		})
		b.Run(fmt.Sprintf("r%d/task", nr), func(b *testing.B) {
			benchBackend(b, cfg,
				func(d *domain.Domain) core.Backend {
					return core.NewBackendTask(d, core.DefaultOptions(size, th))
				})
		})
	}
}

// BenchmarkFigure11 reports the productive-time ratio (the "util" metric)
// for both runtimes across sizes.
func BenchmarkFigure11(b *testing.B) {
	th := runtime.GOMAXPROCS(0)
	for _, size := range benchSizes {
		size := size
		b.Run(fmt.Sprintf("s%d/omp", size), func(b *testing.B) {
			benchBackend(b, domain.DefaultConfig(size),
				func(d *domain.Domain) core.Backend { return core.NewBackendOMP(d, th) })
		})
		b.Run(fmt.Sprintf("s%d/task", size), func(b *testing.B) {
			benchBackend(b, domain.DefaultConfig(size),
				func(d *domain.Domain) core.Backend {
					return core.NewBackendTask(d, core.DefaultOptions(size, th))
				})
		})
	}
}

// BenchmarkTableI sweeps the task partition size (the paper's P).
func BenchmarkTableI(b *testing.B) {
	th := runtime.GOMAXPROCS(0)
	const size = 16
	for _, part := range []int{128, 256, 512, 1024, 2048, 4096} {
		part := part
		b.Run(fmt.Sprintf("P%d", part), func(b *testing.B) {
			benchBackend(b, domain.DefaultConfig(size),
				func(d *domain.Domain) core.Backend {
					opt := core.DefaultOptions(size, th)
					opt.PartNodal = part
					opt.PartElem = part
					return core.NewBackendTask(d, opt)
				})
		})
	}
}

// BenchmarkNaive_ForEach measures the prior hpx::for_each-style port that
// the paper's Section III reports as slower than the OpenMP reference.
func BenchmarkNaive_ForEach(b *testing.B) {
	th := runtime.GOMAXPROCS(0)
	for _, size := range benchSizes {
		size := size
		b.Run(fmt.Sprintf("s%d", size), func(b *testing.B) {
			benchBackend(b, domain.DefaultConfig(size),
				func(d *domain.Domain) core.Backend { return core.NewBackendNaive(d, th) })
		})
	}
}

// BenchmarkAblation disables one tasking technique at a time.
func BenchmarkAblation(b *testing.B) {
	th := runtime.GOMAXPROCS(0)
	const size = 16
	variants := []struct {
		name string
		mod  func(*core.Options)
	}{
		{"full", func(o *core.Options) {}},
		{"noChain", func(o *core.Options) { o.Chain = false }},
		{"noFuse", func(o *core.Options) { o.Fuse = false }},
		{"noParallelForces", func(o *core.Options) { o.ParallelForces = false }},
		{"noParallelRegions", func(o *core.Options) { o.ParallelRegions = false }},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			benchBackend(b, domain.DefaultConfig(size),
				func(d *domain.Domain) core.Backend {
					opt := core.DefaultOptions(size, th)
					v.mod(&opt)
					return core.NewBackendTask(d, opt)
				})
		})
	}
}

// BenchmarkDistributed measures the future-work experiment (multi-domain,
// sync vs overlapped exchange, optional per-rank threading) in ns per
// whole run of a fixed iteration count.
func BenchmarkDistributed(b *testing.B) {
	const size = 8
	const iters = 10
	variants := []struct {
		name string
		cfg  dist.Config
	}{
		{"1rank", dist.Config{Nx: size, Ny: size, NzPerRank: size, Ranks: 1,
			NumReg: 11, Balance: 1, Cost: 1, MaxIterations: iters}},
		{"2ranks-sync", dist.Config{Nx: size, Ny: size, NzPerRank: size, Ranks: 2,
			NumReg: 11, Balance: 1, Cost: 1, MaxIterations: iters}},
		{"2ranks-async", dist.Config{Nx: size, Ny: size, NzPerRank: size, Ranks: 2,
			NumReg: 11, Balance: 1, Cost: 1, MaxIterations: iters, Async: true}},
		{"2ranks-hybrid", dist.Config{Nx: size, Ny: size, NzPerRank: size, Ranks: 2,
			NumReg: 11, Balance: 1, Cost: 1, MaxIterations: iters, Async: true,
			ThreadsPerRank: 2}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dist.Run(v.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
